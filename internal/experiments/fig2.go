package experiments

import (
	"fmt"
	"strings"

	"canids/internal/attack"
	"canids/internal/can"
	"canids/internal/sim"
	"canids/internal/vehicle"
)

// Fig2Result reproduces Fig. 2: the golden template's per-bit binary
// entropy and one attacked window's entropy vector, with the bits that
// deviated beyond threshold marked.
type Fig2Result struct {
	// Template is the per-bit golden entropy H_temp (bit 1 = MSB).
	Template []float64
	// TemplateRange is the per-bit max−min over training windows.
	TemplateRange []float64
	// Attacked is the entropy vector of the attacked example window.
	Attacked []float64
	// ViolatedBits lists the 1-based bits that exceeded threshold in the
	// attacked window (the paper's example highlights bits 6, 7, 11).
	ViolatedBits []int
	// InjectedID is the identifier used for the example attack.
	InjectedID can.ID
	// TrainWindowCount is the number of template measurements averaged.
	TrainWindowCount int
}

// Fig2 runs the golden-template experiment: train on clean driving, then
// inject a single-ID attack and capture the shifted entropy vector.
func Fig2(p Params) (Fig2Result, error) {
	tmpl, profile, err := TrainTemplate(p)
	if err != nil {
		return Fig2Result{}, err
	}
	d, err := newDetector(p, tmpl)
	if err != nil {
		return Fig2Result{}, err
	}

	// Example attack: a high-priority single-ID injection at 100 Hz.
	injected := profile.IDSet()[2]
	res, err := cachedRun(p, profile, runOptions{
		scenario: vehicle.Idle,
		seed:     sim.SplitSeed(p.Seed, 0xF2),
		duration: 6 * p.Window,
		attackCfg: &attack.Config{
			Scenario:  attack.Single,
			IDs:       []can.ID{injected},
			Frequency: 100,
			Start:     2 * p.Window,
			Seed:      sim.SplitSeed(p.Seed, 0xF3),
		},
	})
	if err != nil {
		return Fig2Result{}, err
	}

	out := Fig2Result{
		Template:         tmpl.MeanH,
		Attacked:         make([]float64, tmpl.Width),
		InjectedID:       injected,
		TrainWindowCount: tmpl.Windows,
	}
	for i := 1; i <= tmpl.Width; i++ {
		out.TemplateRange = append(out.TemplateRange, tmpl.Range(i))
	}
	alerts := replay(d, res.trace)
	if len(alerts) == 0 {
		return Fig2Result{}, fmt.Errorf("experiments: fig2: example attack was not detected")
	}
	a := alerts[0]
	for _, b := range a.Bits {
		out.Attacked[b.Bit-1] = b.Entropy
		if b.Violated {
			out.ViolatedBits = append(out.ViolatedBits, b.Bit)
		}
	}
	return out, nil
}

// Table renders the figure as an aligned text table.
func (r Fig2Result) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 2 — golden template vs attacked window (injected ID %s, %d training windows)\n",
		r.InjectedID, r.TrainWindowCount)
	sb.WriteString("bit   H_template   range(train)  H_attacked   deviated\n")
	for i := range r.Template {
		mark := ""
		for _, v := range r.ViolatedBits {
			if v == i+1 {
				mark = "  *"
			}
		}
		fmt.Fprintf(&sb, "%3d   %10.6f   %12.2e  %10.6f%s\n",
			i+1, r.Template[i], r.TemplateRange[i], r.Attacked[i], mark)
	}
	return sb.String()
}
