package experiments

import (
	"fmt"
	"strings"
	"time"

	"canids/internal/attack"
	"canids/internal/can"
	"canids/internal/core"
	"canids/internal/detect"
	"canids/internal/sim"
	"canids/internal/vehicle"
)

// ReactionRow is one detector variant's reaction-time measurement.
type ReactionRow struct {
	// Detector is the variant name.
	Detector string
	// Frequency is the injection frequency of the probe attack.
	Frequency float64
	// Latency is the time from attack start to the first alert; -1 when
	// the attack was never detected.
	Latency time.Duration
}

// ReactionResult quantifies the paper's Section V.E claim that the
// system "reacts quickly in a time period of as short as 1 s", and
// benchmarks the sliding-window extension against it.
type ReactionResult struct {
	Rows []ReactionRow
}

// Reaction measures detection latency for the tumbling (paper) detector
// and the sliding-window extension across injection frequencies.
func Reaction(p Params) (ReactionResult, error) {
	tmpl, profile, err := TrainTemplate(p)
	if err != nil {
		return ReactionResult{}, err
	}

	var out ReactionResult
	for fi, freq := range []float64{100, 50} {
		attackStart := 3*p.Window + p.Window/2 // mid-window start
		res, err := cachedRun(p, profile, runOptions{
			scenario: vehicle.Idle,
			seed:     sim.SplitSeed(p.Seed, int64(fi)+0xE0),
			duration: 10 * p.Window,
			attackCfg: &attack.Config{
				Scenario:  attack.Single,
				IDs:       []can.ID{profile.IDSet()[3]},
				Frequency: freq,
				Start:     attackStart,
				Seed:      sim.SplitSeed(p.Seed, int64(fi)+0xE8),
			},
		})
		if err != nil {
			return ReactionResult{}, err
		}

		tumbling, err := newDetector(p, tmpl)
		if err != nil {
			return ReactionResult{}, err
		}
		slidingCfg := core.SlidingConfig{Base: tumbling.Config()}
		sliding, err := core.NewSliding(slidingCfg)
		if err != nil {
			return ReactionResult{}, err
		}
		if err := sliding.SetTemplate(tmpl); err != nil {
			return ReactionResult{}, err
		}

		for _, d := range []detect.Detector{tumbling, sliding} {
			latency := time.Duration(-1)
			d.Reset()
			for _, r := range res.trace {
				if as := d.Observe(r); len(as) > 0 {
					latency = r.Time - attackStart
					break
				}
			}
			out.Rows = append(out.Rows, ReactionRow{
				Detector:  d.Name(),
				Frequency: freq,
				Latency:   latency,
			})
		}
	}
	return out, nil
}

// Table renders the reaction study.
func (r ReactionResult) Table() string {
	var sb strings.Builder
	sb.WriteString("Reaction time — attack start to first alert (tumbling vs sliding)\n")
	sb.WriteString("detector              freq(Hz)  latency\n")
	for _, row := range r.Rows {
		lat := "not detected"
		if row.Latency >= 0 {
			lat = row.Latency.Round(time.Millisecond).String()
		}
		fmt.Fprintf(&sb, "%-20s  %8.0f  %s\n", row.Detector, row.Frequency, lat)
	}
	return sb.String()
}

// Row returns the measurement for a detector/frequency pair.
func (r ReactionResult) Row(name string, freq float64) (ReactionRow, bool) {
	for _, row := range r.Rows {
		if row.Detector == name && row.Frequency == freq {
			return row, true
		}
	}
	return ReactionRow{}, false
}
