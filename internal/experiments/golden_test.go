package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update rewrites the golden files instead of asserting against them:
//
//	go test ./internal/experiments -run TestGolden -update
//
// Do this only when a change intentionally moves the paper numbers, and
// say so in the commit.
var update = flag.Bool("update", false, "rewrite golden files")

// goldenCheck renders one experiment table and compares it byte for
// byte against its snapshot under testdata/golden. The experiments are
// pure functions of Params, every detector scoring path is
// deterministic (including float summation order), so a refactor that
// shifts any reproduced paper number — even in the last printed digit —
// fails here instead of slipping through.
func goldenCheck(t *testing.T, name string, render func() (string, error)) {
	t.Helper()
	got, err := render()
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%s missing (generate with -update): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s: output drifted from golden file.\nIf the change is intentional, regenerate with -update and call the number shift out in the commit message.\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

func TestGoldenFig2(t *testing.T) {
	goldenCheck(t, "fig2.txt", func() (string, error) {
		res, err := Fig2(DefaultParams())
		if err != nil {
			return "", err
		}
		return res.Table(), nil
	})
}

func TestGoldenFig3(t *testing.T) {
	goldenCheck(t, "fig3.txt", func() (string, error) {
		res, err := Fig3(DefaultParams())
		if err != nil {
			return "", err
		}
		return res.Table(), nil
	})
}

func TestGoldenTable1(t *testing.T) {
	goldenCheck(t, "table1.txt", func() (string, error) {
		res, err := Table1(DefaultParams())
		if err != nil {
			return "", err
		}
		return res.Table(), nil
	})
}
