// Pipeline plumbing for the experiment suite: a memo for the expensive,
// strictly deterministic artifacts (vehicle profile, clean training
// windows, simulation runs) and a bounded worker pool that fans
// independent runs out across CPUs.
//
// Every simulation in this package is a pure function of its parameters
// and seeds, which makes two optimizations sound:
//
//   - trace caching: re-running the same (Params, runOptions) pair
//     replays byte-identical traffic, so results are cached and reused
//     across experiments and repeated invocations (Fig. 2, Table I,
//     Compare and Reaction all share one trained template; benchmark
//     loops re-run whole experiments verbatim);
//   - parallel fan-out: sweep points (Fig. 3's 15 identifiers, Table I's
//     attack rows) depend only on their own pre-derived seeds, so they
//     can execute on a worker pool in any order and still aggregate to
//     results bit-identical to a sequential pass.
package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"canids/internal/trace"
	"canids/internal/vehicle"
)

// runCacheCap bounds the completed-run cache. Entries are evicted in
// insertion order; 64 twelve-second traces stay well under 100 MB while
// covering a full Table1+Fig3+Compare+Stability suite.
const runCacheCap = 64

// trainCacheCap bounds the memoized training-window sets (insertion
// order eviction). Window sets are compacted copies (~2 MB each), so
// the cache tops out around 32 MB even under parameter sweeps.
const trainCacheCap = 16

// trainKey identifies one clean training-window set. Only the fields
// that influence clean traffic generation participate: the profile and
// phase seeds, window length, target window count, bus speed, and the
// stressor load.
type trainKey struct {
	seed         int64
	window       time.Duration
	trainWindows int
	bitRate      int
	stress       int
}

// pipeline is the process-wide experiment cache. All maps are guarded
// by mu; cached values are treated as immutable by every reader. The
// run and training caches are bounded (FIFO eviction); the profile map
// holds one small (~50 KB) entry per distinct seed.
var pipeline = struct {
	mu         sync.Mutex
	profiles   map[int64]vehicle.Profile
	train      map[trainKey][]trace.Trace
	trainOrder []trainKey
	runs       map[string]runResult
	runOrder   []string
}{
	profiles: make(map[int64]vehicle.Profile),
	train:    make(map[trainKey][]trace.Trace),
	runs:     make(map[string]runResult),
}

// ResetCache drops every memoized profile, training set and completed
// run. Benchmarks call it to measure a cold pipeline regardless of
// what ran earlier in the process, and long-lived hosts sweeping many
// parameter sets can call it to release cached traces.
func ResetCache() {
	pipeline.mu.Lock()
	defer pipeline.mu.Unlock()
	pipeline.profiles = make(map[int64]vehicle.Profile)
	pipeline.train = make(map[trainKey][]trace.Trace)
	pipeline.trainOrder = nil
	pipeline.runs = make(map[string]runResult)
	pipeline.runOrder = nil
}

// resetPipelineCache is the test-local alias of ResetCache.
func resetPipelineCache() { ResetCache() }

// fusionProfile returns the memoized Fusion profile for a seed. Profile
// construction is deterministic, so concurrent builders that race simply
// produce equal values.
func fusionProfile(seed int64) vehicle.Profile {
	pipeline.mu.Lock()
	p, ok := pipeline.profiles[seed]
	pipeline.mu.Unlock()
	if ok {
		return p
	}
	p = vehicle.NewFusionProfile(seed)
	pipeline.mu.Lock()
	pipeline.profiles[seed] = p
	pipeline.mu.Unlock()
	return p
}

// runKeyOf serializes every input that influences a run's outcome: bus
// speed, the profile/fleet seed, the run options, and the full attack
// configuration when present.
func runKeyOf(p Params, opts runOptions) string {
	key := fmt.Sprintf("br%d|ps%d|sc%d|s%d|d%d|w%s|st%d",
		p.BitRate, p.Seed, opts.scenario, opts.seed, opts.duration, opts.weakECU, opts.stressLoad)
	if a := opts.attackCfg; a != nil {
		key += fmt.Sprintf("|a%d|ids%v|f%g|st%d|du%d|fl%v|dlc%d|as%d",
			a.Scenario, a.IDs, a.Frequency, a.Start, a.Duration, a.Filter, a.DLC, a.Seed)
	}
	return key
}

// cachedRun executes run through the trace cache: a hit replays the
// stored result, a miss simulates and stores. Errors are never cached.
// Callers must treat the returned trace as immutable — it is shared with
// every other caller of the same configuration.
func cachedRun(p Params, profile vehicle.Profile, opts runOptions) (runResult, error) {
	key := runKeyOf(p, opts)
	pipeline.mu.Lock()
	res, ok := pipeline.runs[key]
	pipeline.mu.Unlock()
	if ok {
		return res, nil
	}
	res, err := run(p, profile, opts)
	if err != nil {
		return runResult{}, err
	}
	// Compact the trace to its exact length before caching: the tap
	// buffer is pre-sized for a saturated bus, and storing it verbatim
	// would pin ~2-3x the needed memory per cached run.
	if len(res.trace) < cap(res.trace) {
		compact := make(trace.Trace, len(res.trace))
		copy(compact, res.trace)
		res.trace = compact
	}
	pipeline.mu.Lock()
	if _, dup := pipeline.runs[key]; !dup {
		pipeline.runs[key] = res
		pipeline.runOrder = append(pipeline.runOrder, key)
		if len(pipeline.runOrder) > runCacheCap {
			delete(pipeline.runs, pipeline.runOrder[0])
			pipeline.runOrder = pipeline.runOrder[1:]
		}
	}
	pipeline.mu.Unlock()
	return res, nil
}

// workers resolves the worker-pool width: Params.Workers when positive,
// otherwise one worker per available CPU.
func (p Params) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// forEach runs job(0..n-1) across a pool of the given width and returns
// the first error encountered. Jobs must be independent and write only
// to their own index of any shared result slice; under that contract the
// aggregate outcome is identical for every pool width, including 1
// (fully sequential).
func forEach(workers, n int, job func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg      sync.WaitGroup
		next    atomic.Int64
		stop    atomic.Bool
		errOnce sync.Once
		firstEr error
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || stop.Load() {
					return
				}
				if err := job(i); err != nil {
					errOnce.Do(func() { firstEr = err })
					// Cancel the remaining jobs: an early failure must
					// not leave the other workers simulating for
					// minutes before the error surfaces.
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstEr
}
