package experiments

import (
	"fmt"
	"strings"

	"canids/internal/core"
	"canids/internal/sim"
	"canids/internal/vehicle"
)

// StabilityResult reproduces the Section IV.B claim: the per-bit entropy
// of normal driving is steady across driving behaviours, so a golden
// template is meaningful.
type StabilityResult struct {
	// PerScenario maps each driving scenario to its per-bit mean
	// entropy vector.
	PerScenario map[string][]float64
	// MaxBitRange is, per bit, the spread max−min of window entropies
	// pooled across every scenario.
	MaxBitRange []float64
	// WorstBit is the 1-based bit with the largest spread.
	WorstBit int
	// WorstRange is that spread — the repo's analogue of the paper's
	// "variation falls in the range 1e-8 to 9e-8".
	WorstRange float64
	// WindowsPerScenario is how many windows each scenario contributed.
	WindowsPerScenario int
}

// Stability measures per-bit entropy across all driving scenarios.
func Stability(p Params) (StabilityResult, error) {
	const windowsPer = 10
	out := StabilityResult{
		PerScenario:        make(map[string][]float64, len(vehicle.Scenarios)),
		MaxBitRange:        make([]float64, core.DefaultConfig().Width),
		WindowsPerScenario: windowsPer,
	}
	profile := fusionProfile(p.Seed)
	width := core.DefaultConfig().Width

	minH := make([]float64, width)
	maxH := make([]float64, width)
	for i := range minH {
		minH[i] = 2
		maxH[i] = -1
	}

	// The per-scenario simulations are independent; fan them out, then
	// aggregate sequentially in scenario order.
	results := make([]runResult, len(vehicle.Scenarios))
	err := forEach(p.workers(), len(vehicle.Scenarios), func(si int) error {
		res, err := cachedRun(p, profile, runOptions{
			scenario: vehicle.Scenarios[si],
			seed:     sim.SplitSeed(p.Seed, int64(si)+0x900),
			duration: (windowsPer + 1) * p.Window,
		})
		if err != nil {
			return err
		}
		results[si] = res
		return nil
	})
	if err != nil {
		return StabilityResult{}, err
	}

	for si, scen := range vehicle.Scenarios {
		ws := results[si].trace.Windows(p.Window, false)
		if len(ws) > 1 {
			ws = ws[1:]
		}
		mean := make([]float64, width)
		used := 0
		for _, w := range ws {
			if len(w) < core.DefaultConfig().MinFrames {
				continue
			}
			m := core.MeasureWindow(w, width)
			used++
			for i := 0; i < width; i++ {
				mean[i] += m.H[i]
				if m.H[i] < minH[i] {
					minH[i] = m.H[i]
				}
				if m.H[i] > maxH[i] {
					maxH[i] = m.H[i]
				}
			}
		}
		if used == 0 {
			return StabilityResult{}, fmt.Errorf("experiments: stability: scenario %v produced no usable windows", scen)
		}
		for i := range mean {
			mean[i] /= float64(used)
		}
		out.PerScenario[scen.String()] = mean
	}

	for i := 0; i < width; i++ {
		r := maxH[i] - minH[i]
		out.MaxBitRange[i] = r
		if r > out.WorstRange {
			out.WorstRange = r
			out.WorstBit = i + 1
		}
	}
	return out, nil
}

// Table renders the stability study.
func (r StabilityResult) Table() string {
	var sb strings.Builder
	sb.WriteString("Entropy stability across driving scenarios (Sec. IV.B)\n")
	sb.WriteString("bit")
	scens := []string{"idle", "audio", "lights", "cruise"}
	for _, s := range scens {
		fmt.Fprintf(&sb, "  %10s", s)
	}
	sb.WriteString("   range(all)\n")
	width := len(r.MaxBitRange)
	for i := 0; i < width; i++ {
		fmt.Fprintf(&sb, "%3d", i+1)
		for _, s := range scens {
			if v, ok := r.PerScenario[s]; ok {
				fmt.Fprintf(&sb, "  %10.6f", v[i])
			}
		}
		fmt.Fprintf(&sb, "   %10.3e\n", r.MaxBitRange[i])
	}
	fmt.Fprintf(&sb, "worst bit %d with spread %.3e over %d windows/scenario\n",
		r.WorstBit, r.WorstRange, r.WindowsPerScenario)
	return sb.String()
}
