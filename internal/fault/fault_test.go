package fault_test

import (
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"canids/internal/fault"
	"canids/internal/trace"
)

// TestHitCounting pins the firing window: a rule armed @N x M fires on
// exactly hits N..N+M-1 of its scope, and on no other.
func TestHitCounting(t *testing.T) {
	in := fault.New()
	in.ArmError(fault.EngineFrame, "bus-a", 3, 2)
	var fired []int
	for i := 1; i <= 8; i++ {
		if err := in.Hit(fault.EngineFrame, "bus-a"); err != nil {
			if !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("hit %d: error does not wrap ErrInjected: %v", i, err)
			}
			fired = append(fired, i)
		}
	}
	if want := []int{3, 4}; len(fired) != 2 || fired[0] != want[0] || fired[1] != want[1] {
		t.Errorf("fired on hits %v, want %v", fired, want)
	}
	if got := in.Hits(fault.EngineFrame); got != 8 {
		t.Errorf("Hits = %d, want 8", got)
	}
}

// TestScopeFilter: a scoped rule only counts (and fires on) its own
// scope; an unscoped rule matches everything.
func TestScopeFilter(t *testing.T) {
	in := fault.New()
	in.ArmError(fault.CheckpointSave, "bus-a", 1, 0)
	if err := in.Hit(fault.CheckpointSave, "bus-b"); err != nil {
		t.Errorf("scoped rule fired on foreign scope: %v", err)
	}
	if err := in.Hit(fault.CheckpointSave, "bus-a"); err == nil {
		t.Error("scoped rule did not fire on its own scope")
	}
	un := fault.New()
	un.ArmError(fault.CheckpointSave, "", 1, 0)
	if err := un.Hit(fault.CheckpointSave, "anything"); err == nil {
		t.Error("unscoped rule did not fire")
	}
}

// TestPanicKind: the panic value identifies the seam.
func TestPanicKind(t *testing.T) {
	in := fault.New()
	in.ArmPanic(fault.EngineSwap, "", 1, 1)
	defer func() {
		v := recover()
		p, ok := v.(*fault.Panic)
		if !ok {
			t.Fatalf("recovered %T (%v), want *fault.Panic", v, v)
		}
		if p.Point != fault.EngineSwap {
			t.Errorf("panic point = %q", p.Point)
		}
	}()
	in.Hit(fault.EngineSwap, "x") //nolint:errcheck // panics
	t.Fatal("armed panic did not fire")
}

// TestStallInterruptible: Close releases a stalled hit long before the
// armed duration.
func TestStallInterruptible(t *testing.T) {
	in := fault.New()
	in.ArmStall(fault.SourceNext, "", 1, 0, time.Hour)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := in.Hit(fault.SourceNext, ""); err != nil {
			t.Errorf("stall returned error: %v", err)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	in.Close()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not release the stall")
	}
}

// TestParseRoundTrip: the spec grammar parses, and String renders it
// back.
func TestParseRoundTrip(t *testing.T) {
	spec := "engine.frame[ms-can]:panic@500;checkpoint.save:error@1x2;source.next:stall=50ms@10x0"
	in, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.String(); got != spec {
		t.Errorf("String() = %q, want %q", got, spec)
	}
	if in2, err := fault.Parse(""); err != nil || in2.String() != "" {
		t.Errorf("empty spec: %v, %q", err, in2.String())
	}
}

// TestParseRejects pins the validation surface.
func TestParseRejects(t *testing.T) {
	for _, spec := range []string{
		"engine.frame",                  // no kind
		"engine.frame:panic",            // no hit count
		"engine.frame:panic@0",          // count < 1
		"engine.frame:panic@x",          // not a number
		"bogus.point:panic@1",           // unknown point
		"engine.frame[oops:panic@1",     // unterminated scope
		"engine.frame:stall@1",          // stall without duration
		"engine.frame:stall=-1s@1",      // negative stall
		"engine.frame:explode@1",        // unknown kind
		"checkpoint.save:error@1x-2",    // bad repeat
		"checkpoint.save:error@1;;bad:", // trailing garbage entry
	} {
		if _, err := fault.Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

// TestNilInjector: every method is a no-op on a nil receiver — the
// production seams rely on it.
func TestNilInjector(t *testing.T) {
	var in *fault.Injector
	if err := in.Hit(fault.EngineFrame, "x"); err != nil {
		t.Errorf("nil Hit = %v", err)
	}
	if in.Hits(fault.EngineFrame) != 0 || in.String() != "" {
		t.Error("nil accessors not zero")
	}
	in.Close()
}

// TestConcurrentHits: the injector is race-free under parallel seams
// (run under -race in CI).
func TestConcurrentHits(t *testing.T) {
	in := fault.New()
	in.ArmError(fault.EngineFrame, "", 100, 0)
	var wg sync.WaitGroup
	var mu sync.Mutex
	n := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := in.Hit(fault.EngineFrame, "any"); err != nil {
					mu.Lock()
					n++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if got := in.Hits(fault.EngineFrame); got != 400 {
		t.Errorf("Hits = %d, want 400", got)
	}
	// 400 total hits, rule fires from hit 100 on, forever.
	if n != 301 {
		t.Errorf("fired %d times, want 301", n)
	}
}

// TestSourceSeam: a wrapped source fails at the exact armed record.
func TestSourceSeam(t *testing.T) {
	tr := make(trace.Trace, 10)
	in := fault.New()
	in.ArmError(fault.SourceNext, "", 4, 1)
	s := &fault.Source{Src: &iter{tr: tr}, Inj: in}
	for i := 1; i <= 3; i++ {
		if _, err := s.Next(); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	if _, err := s.Next(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("record 4: err = %v, want injected", err)
	}
}

type iter struct {
	tr trace.Trace
	i  int
}

func (s *iter) Next() (trace.Record, error) {
	if s.i >= len(s.tr) {
		return trace.Record{}, io.EOF
	}
	r := s.tr[s.i]
	s.i++
	return r, nil
}

// TestReaderTruncates: the reader delivers exactly TruncateAfter bytes
// then the configured error.
func TestReaderTruncates(t *testing.T) {
	r := &fault.Reader{R: strings.NewReader(strings.Repeat("a", 100)), TruncateAfter: 37}
	got, err := io.ReadAll(r)
	if len(got) != 37 {
		t.Errorf("read %d bytes, want 37", len(got))
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("err = %v, want unexpected EOF", err)
	}
}
