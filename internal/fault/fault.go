// Package fault is the deterministic fault-injection harness behind the
// chaos suites: a registry of armed failure rules that production code
// consults at named seams ("points"). A seam is one call —
// Injector.Hit(point, scope) — that is a nil-check when no injector is
// installed and deterministic when one is: rules fire on exact hit
// counts ("panic at frame 500"), never on timers or randomness, so a
// chaos run replays bit-for-bit like every other run in this
// repository.
//
// The engine exposes the per-record seam (fault.EngineFrame, scoped by
// bus) and the swap-install seam (fault.EngineSwap); the serving layer
// exposes the checkpoint-write seam (fault.CheckpointSave). Source
// wraps any record source with a fault.SourceNext seam, and Reader
// turns any upload body into a slow or truncated client. `canids -serve
// -faults <spec>` arms an injector from the command line for scripted
// chaos drills (ci.sh's chaos leg).
//
// Spec grammar, entries separated by ';':
//
//	point[scope]:kind@N[xM]
//
//	engine.frame[ms-can]:panic@500      panic on bus ms-can's 500th record
//	checkpoint.save:error@1x2           fail the first two checkpoint writes
//	engine.frame:stall=50ms@100x0       stall 50ms on every record from the 100th on
//
// N is the 1-based hit the rule first fires on; M is how many
// consecutive hits it fires for (default 1, 0 = forever). The scope
// filter is optional; an unscoped rule matches every scope.
package fault

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"canids/internal/trace"
)

// Point names one injection seam. The production call sites below are
// the complete set; Parse rejects unknown points.
type Point string

const (
	// EngineFrame fires once per record on the engine's dispatch
	// goroutine, scoped by the engine's Config.FaultScope (the serving
	// layer sets it to the bus channel).
	EngineFrame Point = "engine.frame"
	// EngineSwap fires when the window merger installs a swap template —
	// the only way to reach the install-failure path, since validation
	// makes a real rejection unreachable.
	EngineSwap Point = "engine.swap"
	// CheckpointSave fires before each per-bus checkpoint write, scoped
	// by bus.
	CheckpointSave Point = "checkpoint.save"
	// SourceNext fires per record in a fault.Source wrapper.
	SourceNext Point = "source.next"
)

var points = map[Point]bool{EngineFrame: true, EngineSwap: true, CheckpointSave: true, SourceNext: true}

// Kind is what a firing rule does to the caller.
type Kind int

const (
	// KindPanic panics with a *Panic value.
	KindPanic Kind = iota
	// KindError returns a *Error (errors.Is ErrInjected).
	KindError
	// KindStall sleeps the rule's duration, interruptible by Close, then
	// lets the call proceed.
	KindStall
)

func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindError:
		return "error"
	case KindStall:
		return "stall"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ErrInjected is the sentinel every injected error wraps.
var ErrInjected = errors.New("fault: injected")

// Error is an injected failure returned from a seam.
type Error struct {
	Point Point
	Scope string
}

func (e *Error) Error() string {
	if e.Scope != "" {
		return fmt.Sprintf("fault: injected error at %s[%s]", e.Point, e.Scope)
	}
	return fmt.Sprintf("fault: injected error at %s", e.Point)
}

// Unwrap makes errors.Is(err, ErrInjected) hold.
func (e *Error) Unwrap() error { return ErrInjected }

// Panic is the value an injected panic carries.
type Panic struct {
	Point Point
	Scope string
}

func (p *Panic) String() string {
	if p.Scope != "" {
		return fmt.Sprintf("fault: injected panic at %s[%s]", p.Point, p.Scope)
	}
	return fmt.Sprintf("fault: injected panic at %s", p.Point)
}

// rule is one armed failure: fire on matching hits (after, after+times]
// (times 0 = forever), counted over this rule's own scope matches.
type rule struct {
	point Point
	scope string
	kind  Kind
	stall time.Duration
	after uint64
	times uint64
	count uint64
}

func (r *rule) spec() string {
	var sb strings.Builder
	sb.WriteString(string(r.point))
	if r.scope != "" {
		fmt.Fprintf(&sb, "[%s]", r.scope)
	}
	sb.WriteByte(':')
	if r.kind == KindStall {
		fmt.Fprintf(&sb, "stall=%v", r.stall)
	} else {
		sb.WriteString(r.kind.String())
	}
	fmt.Fprintf(&sb, "@%d", r.after+1)
	if r.times != 1 {
		fmt.Fprintf(&sb, "x%d", r.times)
	}
	return sb.String()
}

// Injector is a set of armed rules. Safe for concurrent use; the zero
// value is not usable — construct with New or Parse. A nil *Injector is
// a valid no-op receiver for Hit, so call sites need no guard of their
// own (hot paths still cache the nil check).
type Injector struct {
	mu    sync.Mutex
	rules []*rule
	hits  map[Point]uint64
	done  chan struct{}
	once  sync.Once
}

// New returns an injector with no rules armed.
func New() *Injector {
	return &Injector{hits: make(map[Point]uint64), done: make(chan struct{})}
}

// Parse builds an injector from a spec string (see the package
// comment). An empty spec returns an empty injector.
func Parse(spec string) (*Injector, error) {
	in := New()
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		r, err := parseRule(entry)
		if err != nil {
			return nil, fmt.Errorf("fault: bad rule %q: %w", entry, err)
		}
		in.rules = append(in.rules, r)
	}
	return in, nil
}

func parseRule(entry string) (*rule, error) {
	head, tail, ok := strings.Cut(entry, ":")
	if !ok {
		return nil, errors.New("want point[scope]:kind@N")
	}
	r := &rule{times: 1}
	if i := strings.IndexByte(head, '['); i >= 0 {
		if !strings.HasSuffix(head, "]") {
			return nil, errors.New("unterminated [scope]")
		}
		r.scope = head[i+1 : len(head)-1]
		head = head[:i]
	}
	r.point = Point(head)
	if !points[r.point] {
		return nil, fmt.Errorf("unknown point %q", head)
	}
	kindStr, at, ok := strings.Cut(tail, "@")
	if !ok {
		return nil, errors.New("missing @N hit count")
	}
	switch {
	case kindStr == "panic":
		r.kind = KindPanic
	case kindStr == "error":
		r.kind = KindError
	case strings.HasPrefix(kindStr, "stall="):
		d, err := time.ParseDuration(strings.TrimPrefix(kindStr, "stall="))
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("bad stall duration %q", kindStr)
		}
		r.kind, r.stall = KindStall, d
	default:
		return nil, fmt.Errorf("unknown kind %q (want panic, error or stall=<dur>)", kindStr)
	}
	nStr, timesStr, hasTimes := strings.Cut(at, "x")
	n, err := strconv.ParseUint(nStr, 10, 64)
	if err != nil || n < 1 {
		return nil, fmt.Errorf("bad hit count %q (want >= 1)", nStr)
	}
	r.after = n - 1
	if hasTimes {
		if r.times, err = strconv.ParseUint(timesStr, 10, 64); err != nil {
			return nil, fmt.Errorf("bad repeat count %q", timesStr)
		}
	}
	return r, nil
}

// arm appends one rule; n is the 1-based hit the rule first fires on,
// times how many consecutive matching hits it fires for (0 = forever).
func (in *Injector) arm(r *rule, n, times int) {
	if n < 1 {
		n = 1
	}
	r.after = uint64(n - 1)
	r.times = uint64(times)
	if times < 0 {
		r.times = 1
	}
	in.mu.Lock()
	in.rules = append(in.rules, r)
	in.mu.Unlock()
}

// ArmPanic arms a panic at the n-th matching hit, for times hits
// (0 = forever). Counting starts at the arm, not at process start.
func (in *Injector) ArmPanic(p Point, scope string, n, times int) {
	in.arm(&rule{point: p, scope: scope, kind: KindPanic}, n, times)
}

// ArmError arms an injected error like ArmPanic.
func (in *Injector) ArmError(p Point, scope string, n, times int) {
	in.arm(&rule{point: p, scope: scope, kind: KindError}, n, times)
}

// ArmStall arms a stall of duration d like ArmPanic.
func (in *Injector) ArmStall(p Point, scope string, n, times int, d time.Duration) {
	in.arm(&rule{point: p, scope: scope, kind: KindStall, stall: d}, n, times)
}

// Hit consults the seam: a nil injector (or no matching armed rule)
// returns nil; a firing error rule returns its *Error; a firing panic
// rule panics with a *Panic; a firing stall rule sleeps, then falls
// through to any further rule. Rules are evaluated in arm order.
func (in *Injector) Hit(p Point, scope string) error {
	if in == nil {
		return nil
	}
	var stall time.Duration
	var fire *rule
	in.mu.Lock()
	in.hits[p]++
	for _, r := range in.rules {
		if r.point != p || (r.scope != "" && r.scope != scope) {
			continue
		}
		r.count++
		if r.count <= r.after || (r.times != 0 && r.count > r.after+r.times) {
			continue
		}
		if r.kind == KindStall {
			stall += r.stall
			continue
		}
		if fire == nil {
			fire = r
		}
	}
	in.mu.Unlock()
	if stall > 0 {
		t := time.NewTimer(stall)
		defer t.Stop()
		select {
		case <-t.C:
		case <-in.done:
		}
	}
	if fire == nil {
		return nil
	}
	if fire.kind == KindPanic {
		panic(&Panic{Point: p, Scope: scope})
	}
	return &Error{Point: p, Scope: scope}
}

// Hits returns how many times the seam has been consulted (all scopes).
func (in *Injector) Hits(p Point) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[p]
}

// Close releases every in-flight and future stall. Idempotent.
func (in *Injector) Close() {
	if in == nil {
		return
	}
	in.once.Do(func() { close(in.done) })
}

// String renders the armed rules back in spec form.
func (in *Injector) String() string {
	if in == nil {
		return ""
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	specs := make([]string, len(in.rules))
	for i, r := range in.rules {
		specs[i] = r.spec()
	}
	return strings.Join(specs, ";")
}

// Source wraps a record source with the SourceNext seam, so a chaos
// run can make any stream fail (or stall) at an exact record.
type Source struct {
	Src interface {
		Next() (trace.Record, error)
	}
	Inj   *Injector
	Scope string
}

// Next implements the engine's Source contract.
func (s *Source) Next() (trace.Record, error) {
	if err := s.Inj.Hit(SourceNext, s.Scope); err != nil {
		return trace.Record{}, err
	}
	return s.Src.Next()
}

// Reader misbehaves like a faulty upload client: Delay sleeps before
// every Read (a slow-loris body), and TruncateAfter ends the stream
// with Err after that many bytes (a client dying mid-body). Zero
// values are inert; Err defaults to io.ErrUnexpectedEOF.
type Reader struct {
	R             io.Reader
	Delay         time.Duration
	TruncateAfter int64
	Err           error

	read      int64
	truncated bool
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	if r.Delay > 0 {
		time.Sleep(r.Delay)
	}
	if r.TruncateAfter > 0 {
		if r.truncated {
			return 0, r.truncErr()
		}
		if rem := r.TruncateAfter - r.read; int64(len(p)) > rem {
			p = p[:rem]
		}
	}
	n, err := r.R.Read(p)
	r.read += int64(n)
	if r.TruncateAfter > 0 && r.read >= r.TruncateAfter {
		r.truncated = true
		if err == nil || err == io.EOF {
			err = r.truncErr()
		}
	}
	return n, err
}

func (r *Reader) truncErr() error {
	if r.Err != nil {
		return r.Err
	}
	return io.ErrUnexpectedEOF
}
