package journal

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// entriesEqual asserts got matches the expected payloads, in order.
func entriesEqual(t *testing.T, got [][]byte, want [][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("entry %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.jnl")
	w, err := OpenWriter(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("entry-%03d", i))
		want = append(want, p)
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	// An empty payload is a legal entry.
	want = append(want, []byte{})
	if err := w.Append(nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, torn, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Error("clean journal reported torn")
	}
	entriesEqual(t, got, want)
}

// TestJournalRotation drives the writer past MaxBytes repeatedly and
// checks that segments stay bounded, order survives rotation, and a
// reopened writer continues in the next free slot.
func TestJournalRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.jnl")
	const maxBytes = 256
	w, err := OpenWriter(path, Options{MaxBytes: maxBytes})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	append50 := func() {
		for i := 0; i < 50; i++ {
			p := []byte(fmt.Sprintf("payload-%04d", len(want)))
			want = append(want, p)
			if err := w.Append(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	append50()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs := Segments(path)
	if len(segs) == 0 {
		t.Fatalf("no rotated segments after %d bytes of entries", 20*len(want))
	}
	for _, seg := range append(segs, path) {
		info, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() > maxBytes {
			t.Errorf("%s is %d bytes, cap %d", seg, info.Size(), maxBytes)
		}
	}
	// Reopen and keep appending: the writer must rotate into fresh
	// slots, never clobber a sealed segment.
	w, err = OpenWriter(path, Options{MaxBytes: maxBytes})
	if err != nil {
		t.Fatal(err)
	}
	append50()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, torn, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Error("rotated journal reported torn")
	}
	entriesEqual(t, got, want)
}

// TestJournalTornTail crashes the journal at every possible tail
// length of the final entry and checks that reopening truncates back
// to the last intact entry and appending resumes cleanly.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	intact := [][]byte{[]byte("first"), []byte("second")}
	build := func(name string) (string, int64) {
		path := filepath.Join(dir, name)
		w, err := OpenWriter(path, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range intact {
			if err := w.Append(p); err != nil {
				t.Fatal(err)
			}
		}
		size, _ := w.f.Seek(0, io.SeekCurrent)
		if err := w.Append([]byte("torn-away")); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return path, size
	}
	full, intactSize := build("full.jnl")
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	// Every cut strictly inside the final entry is a torn tail; cut at
	// intactSize is a clean file that simply lost the entry.
	for cut := intactSize; cut < int64(len(data)); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("cut-%d.jnl", cut))
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, torn, err := Read(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if wantTorn := cut > intactSize; torn != wantTorn {
			t.Errorf("cut %d: torn=%v, want %v", cut, torn, wantTorn)
		}
		entriesEqual(t, got, intact)

		// Recovery: reopen, append, and the journal is whole again.
		w, err := OpenWriter(path, Options{})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if err := w.Append([]byte("recovered")); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		got, torn, err = Read(path)
		if err != nil {
			t.Fatal(err)
		}
		if torn {
			t.Errorf("cut %d: recovered journal still torn", cut)
		}
		entriesEqual(t, got, append(append([][]byte{}, intact...), []byte("recovered")))
	}
}

// TestJournalCorruptPayload flips a byte inside an entry: the CRC must
// refuse it and recovery must truncate from the damaged entry on.
func TestJournalCorruptPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.jnl")
	w, err := OpenWriter(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"keep", "damage"} {
		if err := w.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, torn, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !torn {
		t.Error("corrupt payload not reported torn")
	}
	entriesEqual(t, got, [][]byte{[]byte("keep")})
}

// TestJournalRefusesForeignFile pins the recovery guard: a file that
// is not a journal must not be truncated into one.
func TestJournalRefusesForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.jnl")
	if err := os.WriteFile(path, []byte("definitely not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWriter(path, Options{}); err == nil {
		t.Fatal("opened a non-journal file for appending")
	}
	if _, _, err := Read(path); err == nil {
		t.Fatal("read a non-journal file as a journal")
	}
}

func TestSetKeysAreIsolatedAndSanitized(t *testing.T) {
	dir := t.TempDir()
	set, err := OpenSet(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"ms-can", "hs/can", "", "_", "hs_can"}
	for i, k := range keys {
		if err := set.Append(k, []byte(fmt.Sprintf("%d:%s", i, k))); err != nil {
			t.Fatal(err)
		}
	}
	if err := set.Close(); err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for i, k := range keys {
		name := FileName(k)
		if names[name] {
			t.Fatalf("key %q collides on file %q", k, name)
		}
		names[name] = true
		got, torn, err := Read(filepath.Join(dir, name))
		if err != nil || torn {
			t.Fatalf("key %q: err=%v torn=%v", k, err, torn)
		}
		entriesEqual(t, got, [][]byte{[]byte(fmt.Sprintf("%d:%s", i, k))})
	}
	if err := set.Append("x", nil); err == nil {
		t.Error("append on a closed set succeeded")
	}
}
