// Package journal is an append-only binary journal: length-prefixed,
// CRC-checked entries in size-rotated segment files. The serving layer
// uses it for the durable alert journal next to the in-memory ring, and
// for the record/replay capture stream — both need exactly what a
// journal gives: cheap appends, byte-stable files (the replay contract
// is a bit-for-bit diff), and crash tolerance.
//
// # Layout
//
// A journal named "alerts.jnl" is the active segment plus its rotated
// predecessors, oldest first:
//
//	alerts.jnl.000001   oldest rotated segment
//	alerts.jnl.000002
//	alerts.jnl          active segment
//
// Every segment starts with the 8-byte magic "CANJRNL1"; each entry is
// a 4-byte little-endian payload length, a 4-byte little-endian IEEE
// CRC32 of the payload, and the payload itself. Appends go to the
// active segment; when the next entry would push it past
// Options.MaxBytes it is renamed to the next .NNNNNN slot and a fresh
// active segment is started, so no segment (beyond a single oversized
// entry) exceeds the cap.
//
// # Crash tolerance
//
// A crash can leave a torn entry at the active segment's tail — a
// partial header, a short payload, or a payload that fails its CRC.
// OpenWriter scans the segment on open and truncates it back to the
// last intact entry, so the journal is append-ready again and every
// entry that was fully written survives. Read tolerates (and reports)
// the same torn tail without modifying the file.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

const (
	magic      = "CANJRNL1"
	headerSize = len(magic)
	entryHead  = 8 // u32 payload length + u32 CRC32(payload)

	// MaxEntry bounds one payload. It is a corruption firewall, not a
	// capacity knob: a torn length field must not make recovery (or a
	// reader) trust a multi-gigabyte allocation.
	MaxEntry = 16 << 20
)

// ErrNotJournal reports a file whose header is not the journal magic —
// a different file altogether, which recovery must refuse to truncate.
var ErrNotJournal = errors.New("journal: bad magic (not a journal file)")

// Options parameterizes a Writer.
type Options struct {
	// MaxBytes caps one segment file; an append that would exceed it
	// rotates first. Zero disables rotation (one unbounded segment).
	MaxBytes int64
	// Sync fsyncs after every append. Durable but slow; off, entries are
	// flushed by the OS and forced down on Close.
	Sync bool
}

// Writer appends entries to the active segment of one journal.
// Not safe for concurrent use; callers serialize (Set does).
type Writer struct {
	path string
	opts Options
	f    *os.File
	size int64
	seq  int // next rotation slot, 1-based
	head [entryHead]byte
}

// OpenWriter opens (or creates) the journal at path for appending,
// recovering a torn tail left by a crash: the active segment is
// truncated back to its last intact entry. The parent directory must
// exist.
func OpenWriter(path string, opts Options) (*Writer, error) {
	w := &Writer{path: path, opts: opts, seq: nextSeq(path)}
	if err := w.openActive(); err != nil {
		return nil, err
	}
	return w, nil
}

// openActive opens the active segment, creating or recovering it.
func (w *Writer) openActive() error {
	f, err := os.OpenFile(w.path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return err
	}
	valid, _, _, err := scan(data)
	if err != nil {
		f.Close()
		return fmt.Errorf("journal: %s: %w", w.path, err)
	}
	if valid == 0 {
		// New (or fully torn-at-header) segment: start from the magic.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return err
		}
		if _, err := f.WriteAt([]byte(magic), 0); err != nil {
			f.Close()
			return err
		}
		valid = int64(headerSize)
	} else if valid < int64(len(data)) {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return err
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	w.f, w.size = f, valid
	return nil
}

// Append writes one entry to the active segment, rotating first when
// the entry would push the segment past Options.MaxBytes.
func (w *Writer) Append(payload []byte) error {
	if w.f == nil {
		return errors.New("journal: writer is closed")
	}
	if len(payload) > MaxEntry {
		return fmt.Errorf("journal: entry of %d bytes exceeds the %d byte bound", len(payload), MaxEntry)
	}
	need := int64(entryHead + len(payload))
	if w.opts.MaxBytes > 0 && w.size > int64(headerSize) && w.size+need > w.opts.MaxBytes {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint32(w.head[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.head[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.f.Write(w.head[:]); err != nil {
		return err
	}
	if _, err := w.f.Write(payload); err != nil {
		return err
	}
	w.size += need
	if w.opts.Sync {
		return w.f.Sync()
	}
	return nil
}

// rotate seals the active segment into the next numbered slot and
// starts a fresh one.
func (w *Writer) rotate() error {
	if err := w.f.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.f = nil
	if err := os.Rename(w.path, segmentName(w.path, w.seq)); err != nil {
		return err
	}
	w.seq++
	return w.openActive()
}

// Size returns the active segment's size in bytes, including the magic
// header. Rotated segments are capped at Options.MaxBytes and not
// counted here.
func (w *Writer) Size() int64 { return w.size }

// Segments returns how many segment files the journal currently spans:
// rotated slots plus the active segment.
func (w *Writer) Segments() int { return w.seq }

// Sync forces the active segment down to stable storage.
func (w *Writer) Sync() error {
	if w.f == nil {
		return nil
	}
	return w.f.Sync()
}

// Close syncs and closes the active segment. The Writer is unusable
// afterwards.
func (w *Writer) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// segmentName is the rotated slot path: "alerts.jnl" slot 3 is
// "alerts.jnl.000003". Fixed width keeps lexicographic order equal to
// rotation order.
func segmentName(path string, seq int) string {
	return fmt.Sprintf("%s.%06d", path, seq)
}

// nextSeq is the first free rotation slot for a journal path.
func nextSeq(path string) int {
	next := 1
	for _, seg := range Segments(path) {
		var n int
		if _, err := fmt.Sscanf(seg, path+".%06d", &n); err == nil && n >= next {
			next = n + 1
		}
	}
	return next
}

// Segments lists a journal's rotated segment files, oldest first. The
// active segment is not included (it may not exist yet).
func Segments(path string) []string {
	matches, _ := filepath.Glob(path + ".[0-9][0-9][0-9][0-9][0-9][0-9]")
	sort.Strings(matches)
	return matches
}

// Read returns every entry of the journal at path — rotated segments
// oldest first, then the active segment. torn reports that a segment
// ended in a partial entry (crash tail); the intact entries before it
// are still returned. A missing active segment with no rotated
// segments is an error.
func Read(path string) (entries [][]byte, torn bool, err error) {
	files := Segments(path)
	if _, serr := os.Stat(path); serr == nil {
		files = append(files, path)
	} else if len(files) == 0 {
		return nil, false, serr
	}
	for _, f := range files {
		es, t, err := ReadSegment(f)
		if err != nil {
			return nil, false, err
		}
		entries = append(entries, es...)
		torn = torn || t
	}
	return entries, torn, nil
}

// ReadSegment returns one segment file's intact entries; torn reports
// a partial entry at its tail.
func ReadSegment(path string) (entries [][]byte, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	_, entries, torn, err = scan(data)
	if err != nil {
		return nil, false, fmt.Errorf("journal: %s: %w", path, err)
	}
	return entries, torn, nil
}

// scan walks one segment image and returns the byte length of its
// valid prefix and the intact entries inside it. torn means the image
// continued past the valid prefix (a partial or corrupt entry).
// A non-journal magic is an error; a file shorter than the magic is
// treated as fully torn (a crash before the header landed).
func scan(data []byte) (valid int64, entries [][]byte, torn bool, err error) {
	if len(data) < headerSize {
		return 0, nil, len(data) > 0, nil
	}
	if string(data[:headerSize]) != magic {
		return 0, nil, false, ErrNotJournal
	}
	off := int64(headerSize)
	for {
		rest := int64(len(data)) - off
		if rest == 0 {
			return off, entries, false, nil
		}
		if rest < entryHead {
			return off, entries, true, nil
		}
		n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > MaxEntry || rest < entryHead+n {
			return off, entries, true, nil
		}
		payload := data[off+entryHead : off+entryHead+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return off, entries, true, nil
		}
		entries = append(entries, payload)
		off += entryHead + n
	}
}

// Set manages one journal per key under a directory — the serving
// layer's shape: one alert journal per bus. Files are
// <dir>/<FileName(key)>; writers open lazily on first append. Safe for
// concurrent use.
type Set struct {
	dir  string
	opts Options

	mu      sync.Mutex
	writers map[string]*Writer
	closed  bool
	// finalStats freezes the per-key sizes at Close, keeping the
	// serving layer's journal gauges truthful after a drain.
	finalStats []KeyStats
}

// OpenSet opens (creating the directory if needed) a journal set.
func OpenSet(dir string, opts Options) (*Set, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Set{dir: dir, opts: opts, writers: make(map[string]*Writer)}, nil
}

// Append writes one entry to the key's journal, opening (and
// recovering) it on first use.
func (s *Set) Append(key string, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("journal: set is closed")
	}
	w, ok := s.writers[key]
	if !ok {
		var err error
		w, err = OpenWriter(filepath.Join(s.dir, FileName(key)), s.opts)
		if err != nil {
			return err
		}
		s.writers[key] = w
	}
	return w.Append(payload)
}

// KeyStats describes one key's journal at a point in time — the
// serving layer's /metrics gauges.
type KeyStats struct {
	// Key is the journal key (a bus channel).
	Key string
	// ActiveBytes is the active segment's size, including the header.
	ActiveBytes int64
	// Segments is the number of segment files: rotated plus active.
	Segments int
}

// Stats reports every open journal in the set, sorted by key. Keys
// that have never been appended to do not appear (writers open
// lazily). After Close the final sizes remain readable, so a /metrics
// scrape of a drained server still reports what was journaled.
func (s *Set) Stats() []KeyStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return s.finalStats
	}
	return s.statsLocked()
}

func (s *Set) statsLocked() []KeyStats {
	out := make([]KeyStats, 0, len(s.writers))
	for key, w := range s.writers {
		out = append(out, KeyStats{Key: key, ActiveBytes: w.Size(), Segments: w.Segments()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Sync forces every open journal down to stable storage.
func (s *Set) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var errs []error
	for _, w := range s.writers {
		errs = append(errs, w.Sync())
	}
	return errors.Join(errs...)
}

// Close syncs and closes every journal in the set.
func (s *Set) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.finalStats = s.statsLocked()
	}
	s.closed = true
	var errs []error
	for _, w := range s.writers {
		errs = append(errs, w.Close())
	}
	s.writers = make(map[string]*Writer)
	return errors.Join(errs...)
}

// FileName maps a journal key (a bus channel) to its file name,
// injectively, with the same escaping the checkpoint store uses:
// [A-Za-z0-9-] bytes pass through, every other byte (including '_',
// the escape introducer) becomes "_xx" hex, the empty key maps to "_"
// (which no escaped key can produce), and ".jnl" is appended. Distinct
// keys can never share a file.
func FileName(key string) string {
	var sb strings.Builder
	for i := 0; i < len(key); i++ {
		switch b := key[i]; {
		case b >= 'a' && b <= 'z', b >= 'A' && b <= 'Z', b >= '0' && b <= '9', b == '-':
			sb.WriteByte(b)
		default:
			fmt.Fprintf(&sb, "_%02x", b)
		}
	}
	name := sb.String()
	if name == "" {
		name = "_"
	}
	return name + ".jnl"
}
