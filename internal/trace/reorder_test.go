package trace

import (
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"canids/internal/can"
)

// sliceDecoder feeds a fixed slice of records, in order, as a Decoder.
type sliceDecoder struct {
	recs []Record
	next int
}

func (d *sliceDecoder) Next() (Record, error) {
	if d.next >= len(d.recs) {
		return Record{}, io.EOF
	}
	r := d.recs[d.next]
	d.next++
	return r, nil
}

func recAt(t time.Duration, id can.ID) Record {
	r := Record{Time: t}
	r.Frame.ID = id
	return r
}

func drain(t *testing.T, d Decoder) []Record {
	t.Helper()
	var out []Record
	for {
		r, err := d.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, r)
	}
}

func TestReorderSortsWithinHorizon(t *testing.T) {
	src := &sliceDecoder{recs: []Record{
		recAt(0, 1),
		recAt(5*time.Millisecond, 2),
		recAt(3*time.Millisecond, 3), // regresses 2ms, inside the 10ms horizon
		recAt(4*time.Millisecond, 4),
		recAt(20*time.Millisecond, 5),
		recAt(12*time.Millisecond, 6), // regresses 8ms, inside horizon
	}}
	d := NewReorderDecoder(src, 10*time.Millisecond)
	out := drain(t, d)
	want := []can.ID{1, 3, 4, 2, 6, 5}
	if len(out) != len(want) {
		t.Fatalf("got %d records, want %d", len(out), len(want))
	}
	for i, id := range want {
		if out[i].Frame.ID != id {
			t.Errorf("record %d: got ID %d, want %d", i, out[i].Frame.ID, id)
		}
	}
	for i := 1; i < len(out); i++ {
		if out[i].Time < out[i-1].Time {
			t.Errorf("record %d: time %v < previous %v", i, out[i].Time, out[i-1].Time)
		}
	}
	if d.Late() != 0 {
		t.Errorf("Late() = %d, want 0", d.Late())
	}
}

func TestReorderStableOnEqualTimestamps(t *testing.T) {
	src := &sliceDecoder{recs: []Record{
		recAt(2*time.Millisecond, 1),
		recAt(time.Millisecond, 2),
		recAt(time.Millisecond, 3),
		recAt(time.Millisecond, 4),
	}}
	out := drain(t, NewReorderDecoder(src, 5*time.Millisecond))
	want := []can.ID{2, 3, 4, 1}
	for i, id := range want {
		if out[i].Frame.ID != id {
			t.Errorf("record %d: got ID %d, want %d (equal timestamps must keep arrival order)", i, out[i].Frame.ID, id)
		}
	}
}

func TestReorderBeyondHorizonErrors(t *testing.T) {
	src := &sliceDecoder{recs: []Record{
		recAt(0, 1),
		recAt(100*time.Millisecond, 2),
		recAt(200*time.Millisecond, 3),
		recAt(50*time.Millisecond, 4), // regresses far beyond the 10ms horizon
	}}
	d := NewReorderDecoder(src, 10*time.Millisecond)
	for {
		_, err := d.Next()
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrTimeRegression) {
			t.Fatalf("got %v, want ErrTimeRegression", err)
		}
		return
	}
}

func TestReorderDropLateCounts(t *testing.T) {
	src := &sliceDecoder{recs: []Record{
		recAt(0, 1),
		recAt(100*time.Millisecond, 2),
		recAt(200*time.Millisecond, 3),
		recAt(50*time.Millisecond, 4),  // dropped: released stream is already past 50ms+horizon
		recAt(300*time.Millisecond, 5), // stream continues after the drop
	}}
	d := NewReorderDecoder(src, 10*time.Millisecond)
	d.SetDropLate(true)
	out := drain(t, d)
	want := []can.ID{1, 2, 3, 5}
	if len(out) != len(want) {
		t.Fatalf("got %d records, want %d", len(out), len(want))
	}
	for i, id := range want {
		if out[i].Frame.ID != id {
			t.Errorf("record %d: got ID %d, want %d", i, out[i].Frame.ID, id)
		}
	}
	if d.Late() != 1 {
		t.Errorf("Late() = %d, want 1", d.Late())
	}
}

func TestReorderZeroHorizonIsStrict(t *testing.T) {
	src := &sliceDecoder{recs: []Record{
		recAt(time.Millisecond, 1),
		recAt(2*time.Millisecond, 2),
		recAt(time.Millisecond, 3), // any regression at all is unplaceable
	}}
	d := NewReorderDecoder(src, 0)
	var err error
	for err == nil {
		_, err = d.Next()
	}
	if !errors.Is(err, ErrTimeRegression) {
		t.Fatalf("got %v, want ErrTimeRegression", err)
	}

	// Monotonic input passes through unchanged.
	src = &sliceDecoder{recs: []Record{recAt(0, 1), recAt(0, 2), recAt(time.Millisecond, 3)}}
	out := drain(t, NewReorderDecoder(src, 0))
	if len(out) != 3 || out[0].Frame.ID != 1 || out[1].Frame.ID != 2 || out[2].Frame.ID != 3 {
		t.Fatalf("monotonic passthrough broken: %+v", out)
	}
}

func TestReorderEmptySource(t *testing.T) {
	d := NewReorderDecoder(&sliceDecoder{}, time.Second)
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("got %v, want io.EOF", err)
	}
}

// TestDecodersKeepFileOrder pins the pre-existing strict behavior: the
// plain format decoders emit records exactly in file order, without
// sorting or rejecting timestamp regressions. Reordering is strictly
// opt-in via ReorderDecoder.
func TestDecodersKeepFileOrder(t *testing.T) {
	const candump = "(0.000200) can0 101#01\n(0.000100) can0 102#02\n"
	const csv = "time_us,channel,id,dlc,data,source,injected\n" +
		"200,can0,101,1,01,ecu,false\n" +
		"100,can0,102,1,02,ecu,false\n"
	cases := []struct {
		name string
		dec  Decoder
	}{
		{"candump", NewCandumpDecoder(strings.NewReader(candump))},
		{"csv", NewCSVDecoder(strings.NewReader(csv))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := drain(t, tc.dec)
			if len(out) != 2 {
				t.Fatalf("got %d records, want 2", len(out))
			}
			if out[0].Time != 200*time.Microsecond || out[1].Time != 100*time.Microsecond {
				t.Fatalf("file order not preserved: %v then %v", out[0].Time, out[1].Time)
			}
		})
	}
}
