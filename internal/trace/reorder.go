package trace

import (
	"container/heap"
	"errors"
	"fmt"
	"io"
	"time"
)

// ErrTimeRegression reports a record whose timestamp precedes an
// already-released record by more than the reorder horizon — sorting
// inside the horizon cannot place it anymore.
var ErrTimeRegression = errors.New("trace: timestamp regression beyond jitter horizon")

// ReorderDecoder wraps a Decoder and releases its records in
// non-decreasing timestamp order, tolerating bounded regressions: a
// record may arrive up to `horizon` earlier than the newest timestamp
// seen so far and still be sorted into place. Real-world captures are
// not monotonic (multi-controller logging, userspace timestamping), but
// the engine's Source contract requires order; this adapter bridges the
// two without buffering more than the horizon's worth of records.
//
// The plain decoders (candump / CSV / binary) stay strict: they return
// records exactly in file order, jitter included — pinned by
// TestDecodersKeepFileOrder — so existing readers see no behavior
// change. Reordering is opt-in by wrapping, which is what the dataset
// importers do.
//
// A record older than the last released one by more than the horizon is
// unplaceable: Next returns ErrTimeRegression, or — with SetDropLate —
// skips the record and counts it in Late, the accounting mode the
// importers use. A zero horizon buffers nothing and turns the wrapper
// into a strict monotonicity check.
//
// Records with equal timestamps keep their arrival order (the heap
// tie-breaks on sequence), so the released stream is a deterministic
// function of the input.
type ReorderDecoder struct {
	src      Decoder
	horizon  time.Duration
	dropLate bool

	buf     reorderHeap
	seq     uint64
	maxSeen time.Duration
	haveMax bool
	last    time.Duration
	emitted bool
	late    int
	done    bool
}

// NewReorderDecoder wraps src with a reorder buffer of the given
// horizon. A negative horizon is treated as zero.
func NewReorderDecoder(src Decoder, horizon time.Duration) *ReorderDecoder {
	if horizon < 0 {
		horizon = 0
	}
	return &ReorderDecoder{src: src, horizon: horizon}
}

// SetDropLate selects what happens to a record that regresses beyond
// the horizon: false (the default) fails the stream with
// ErrTimeRegression; true silently skips the record and counts it in
// Late.
func (d *ReorderDecoder) SetDropLate(v bool) { d.dropLate = v }

// Late returns how many unplaceable records were skipped under
// SetDropLate(true).
func (d *ReorderDecoder) Late() int { return d.late }

// Next implements Decoder, releasing records in non-decreasing
// timestamp order.
func (d *ReorderDecoder) Next() (Record, error) {
	// Fill until the oldest buffered record is safe to release: once
	// the newest timestamp seen is a full horizon past it, no
	// in-horizon arrival can still sort before it. The gap is computed
	// in uint64 two's-complement space so extreme (fuzzed) timestamp
	// ranges cannot overflow the comparison.
	for !d.done && (d.buf.Len() == 0 ||
		uint64(d.maxSeen)-uint64(d.buf.items[0].rec.Time) < uint64(d.horizon)) {
		rec, err := d.src.Next()
		if err == io.EOF {
			d.done = true
			break
		}
		if err != nil {
			return Record{}, err
		}
		if !d.haveMax || rec.Time > d.maxSeen {
			d.maxSeen = rec.Time
			d.haveMax = true
		}
		if d.emitted && rec.Time < d.last {
			if d.dropLate {
				d.late++
				continue
			}
			return Record{}, fmt.Errorf("%w: %v after %v released", ErrTimeRegression, rec.Time, d.last)
		}
		heap.Push(&d.buf, reorderItem{rec: rec, seq: d.seq})
		d.seq++
	}
	if d.buf.Len() == 0 {
		return Record{}, io.EOF
	}
	it := heap.Pop(&d.buf).(reorderItem)
	d.last = it.rec.Time
	d.emitted = true
	return it.rec, nil
}

// reorderItem is one buffered record with its arrival sequence number.
type reorderItem struct {
	rec Record
	seq uint64
}

// reorderHeap is a min-heap on (Time, seq).
type reorderHeap struct {
	items []reorderItem
}

func (h *reorderHeap) Len() int { return len(h.items) }
func (h *reorderHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.rec.Time != b.rec.Time {
		return a.rec.Time < b.rec.Time
	}
	return a.seq < b.seq
}
func (h *reorderHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *reorderHeap) Push(x any)    { h.items = append(h.items, x.(reorderItem)) }
func (h *reorderHeap) Pop() any {
	n := len(h.items)
	it := h.items[n-1]
	h.items[n-1] = reorderItem{}
	h.items = h.items[:n-1]
	return it
}
