package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"canids/internal/can"
)

// Errors returned by the log readers.
var (
	ErrSyntax = errors.New("trace: malformed log line")
)

// WriteCandump writes the trace in candump -l text format. Source and
// Injected are not representable in this format and are dropped; use the
// CSV or binary formats to keep ground truth.
func WriteCandump(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	for _, r := range t {
		ch := r.Channel
		if ch == "" {
			ch = "can0"
		}
		sec := r.Time / time.Second
		usec := (r.Time % time.Second) / time.Microsecond
		if _, err := fmt.Fprintf(bw, "(%d.%06d) %s %s\n", sec, usec, ch, r.Frame); err != nil {
			return fmt.Errorf("trace: write candump: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: write candump: %w", err)
	}
	return nil
}

// ReadCandump parses a candump -l text log.
func ReadCandump(r io.Reader) (Trace, error) {
	var out Trace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%w: line %d: %q", ErrSyntax, line, text)
		}
		ts := strings.Trim(fields[0], "()")
		secStr, usecStr, ok := strings.Cut(ts, ".")
		if !ok {
			return nil, fmt.Errorf("%w: line %d: timestamp %q", ErrSyntax, line, ts)
		}
		sec, err := strconv.ParseInt(secStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrSyntax, line, err)
		}
		usec, err := strconv.ParseInt(usecStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrSyntax, line, err)
		}
		frame, err := can.ParseFrame(fields[2])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, Record{
			Time:    time.Duration(sec)*time.Second + time.Duration(usec)*time.Microsecond,
			Channel: fields[1],
			Frame:   frame,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read candump: %w", err)
	}
	return out, nil
}

var csvHeader = []string{"time_us", "channel", "id", "dlc", "data", "source", "injected"}

// WriteCSV writes the trace as CSV with full ground truth.
func WriteCSV(w io.Writer, t Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: write csv: %w", err)
	}
	for _, r := range t {
		inj := "0"
		if r.Injected {
			inj = "1"
		}
		row := []string{
			strconv.FormatInt(int64(r.Time/time.Microsecond), 10),
			r.Channel,
			fmt.Sprintf("%X", uint32(r.Frame.ID)),
			strconv.Itoa(int(r.Frame.Len)),
			fmt.Sprintf("%X", r.Frame.Data[:r.Frame.Len]),
			r.Source,
			inj,
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write csv: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: write csv: %w", err)
	}
	return nil
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, nil
	}
	var out Trace
	for i, row := range rows {
		if i == 0 && row[0] == csvHeader[0] {
			continue // header
		}
		us, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: row %d: %v", ErrSyntax, i+1, err)
		}
		idVal, err := strconv.ParseUint(row[2], 16, 32)
		if err != nil {
			return nil, fmt.Errorf("%w: row %d: %v", ErrSyntax, i+1, err)
		}
		dlc, err := strconv.Atoi(row[3])
		if err != nil || dlc < 0 || dlc > can.MaxDataLen {
			return nil, fmt.Errorf("%w: row %d: bad dlc %q", ErrSyntax, i+1, row[3])
		}
		var frame can.Frame
		frame.ID = can.ID(idVal)
		frame.Extended = frame.ID > can.MaxStandardID
		frame.Len = uint8(dlc)
		dataHex := row[4]
		if len(dataHex) != dlc*2 {
			return nil, fmt.Errorf("%w: row %d: data length %d != dlc %d", ErrSyntax, i+1, len(dataHex)/2, dlc)
		}
		for j := 0; j < dlc; j++ {
			b, err := strconv.ParseUint(dataHex[2*j:2*j+2], 16, 8)
			if err != nil {
				return nil, fmt.Errorf("%w: row %d: %v", ErrSyntax, i+1, err)
			}
			frame.Data[j] = byte(b)
		}
		out = append(out, Record{
			Time:     time.Duration(us) * time.Microsecond,
			Channel:  row[1],
			Frame:    frame,
			Source:   row[5],
			Injected: row[6] == "1",
		})
	}
	return out, nil
}

// Binary stream format: a magic header then length-prefixed records.
var binaryMagic = [4]byte{'C', 'T', 'R', '1'}

// WriteBinary writes the trace in the compact binary stream format.
func WriteBinary(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return fmt.Errorf("trace: write binary: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(t))); err != nil {
		return fmt.Errorf("trace: write binary: %w", err)
	}
	for _, r := range t {
		if err := binary.Write(bw, binary.LittleEndian, int64(r.Time)); err != nil {
			return fmt.Errorf("trace: write binary: %w", err)
		}
		frameBytes, err := r.Frame.MarshalBinary()
		if err != nil {
			return fmt.Errorf("trace: write binary: %w", err)
		}
		meta := []byte(r.Channel + "\x00" + r.Source)
		var inj byte
		if r.Injected {
			inj = 1
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(frameBytes))); err != nil {
			return fmt.Errorf("trace: write binary: %w", err)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(meta))); err != nil {
			return fmt.Errorf("trace: write binary: %w", err)
		}
		if err := bw.WriteByte(inj); err != nil {
			return fmt.Errorf("trace: write binary: %w", err)
		}
		if _, err := bw.Write(frameBytes); err != nil {
			return fmt.Errorf("trace: write binary: %w", err)
		}
		if _, err := bw.Write(meta); err != nil {
			return fmt.Errorf("trace: write binary: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: write binary: %w", err)
	}
	return nil
}

// ReadBinary reads a trace written by WriteBinary.
func ReadBinary(r io.Reader) (Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: read binary: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("trace: read binary: bad magic %q", magic[:])
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("trace: read binary: %w", err)
	}
	out := make(Trace, 0, count)
	for i := uint64(0); i < count; i++ {
		var ts int64
		if err := binary.Read(br, binary.LittleEndian, &ts); err != nil {
			return nil, fmt.Errorf("trace: read binary record %d: %w", i, err)
		}
		var frameLen, metaLen uint16
		if err := binary.Read(br, binary.LittleEndian, &frameLen); err != nil {
			return nil, fmt.Errorf("trace: read binary record %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &metaLen); err != nil {
			return nil, fmt.Errorf("trace: read binary record %d: %w", i, err)
		}
		inj, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: read binary record %d: %w", i, err)
		}
		frameBytes := make([]byte, frameLen)
		if _, err := io.ReadFull(br, frameBytes); err != nil {
			return nil, fmt.Errorf("trace: read binary record %d: %w", i, err)
		}
		meta := make([]byte, metaLen)
		if _, err := io.ReadFull(br, meta); err != nil {
			return nil, fmt.Errorf("trace: read binary record %d: %w", i, err)
		}
		var rec Record
		rec.Time = time.Duration(ts)
		if err := rec.Frame.UnmarshalBinary(frameBytes); err != nil {
			return nil, fmt.Errorf("trace: read binary record %d: %w", i, err)
		}
		channel, source, _ := strings.Cut(string(meta), "\x00")
		rec.Channel = channel
		rec.Source = source
		rec.Injected = inj == 1
		out = append(out, rec)
	}
	return out, nil
}
