package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Errors returned by the log readers.
var (
	ErrSyntax = errors.New("trace: malformed log line")
)

// WriteCandump writes the trace in candump -l text format. Source and
// Injected are not representable in this format and are dropped; use the
// CSV or binary formats to keep ground truth.
func WriteCandump(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	for _, r := range t {
		ch := r.Channel
		if ch == "" {
			ch = "can0"
		}
		sec := r.Time / time.Second
		usec := (r.Time % time.Second) / time.Microsecond
		if _, err := fmt.Fprintf(bw, "(%d.%06d) %s %s\n", sec, usec, ch, r.Frame); err != nil {
			return fmt.Errorf("trace: write candump: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: write candump: %w", err)
	}
	return nil
}

// ReadCandump parses a candump -l text log.
func ReadCandump(r io.Reader) (Trace, error) {
	return ReadAll(NewCandumpDecoder(r))
}

var csvHeader = []string{"time_us", "channel", "id", "dlc", "data", "source", "injected"}

// WriteCSV writes the trace as CSV with full ground truth. Frame flags
// ride in the existing columns, candump-style, so the format loses
// nothing a capture can contain: extended identifiers print as 8 hex
// digits (digit count carries the IDE flag even for values that fit 11
// bits), and remote frames carry "R" in the data column with the
// requested DLC in its own column.
func WriteCSV(w io.Writer, t Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: write csv: %w", err)
	}
	for _, r := range t {
		inj := "0"
		if r.Injected {
			inj = "1"
		}
		id := fmt.Sprintf("%X", uint32(r.Frame.ID))
		if r.Frame.Extended {
			id = fmt.Sprintf("%08X", uint32(r.Frame.ID))
		}
		data := fmt.Sprintf("%X", r.Frame.Data[:r.Frame.Len])
		if r.Frame.Remote {
			data = "R"
		}
		row := []string{
			strconv.FormatInt(int64(r.Time/time.Microsecond), 10),
			r.Channel,
			id,
			strconv.Itoa(int(r.Frame.Len)),
			data,
			r.Source,
			inj,
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write csv: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: write csv: %w", err)
	}
	return nil
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (Trace, error) {
	return ReadAll(NewCSVDecoder(r))
}

// Binary stream format: a magic header then length-prefixed records.
var binaryMagic = [4]byte{'C', 'T', 'R', '1'}

// WriteBinary writes the trace in the compact binary stream format.
func WriteBinary(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return fmt.Errorf("trace: write binary: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(t))); err != nil {
		return fmt.Errorf("trace: write binary: %w", err)
	}
	for _, r := range t {
		if err := binary.Write(bw, binary.LittleEndian, int64(r.Time)); err != nil {
			return fmt.Errorf("trace: write binary: %w", err)
		}
		frameBytes, err := r.Frame.MarshalBinary()
		if err != nil {
			return fmt.Errorf("trace: write binary: %w", err)
		}
		meta := []byte(r.Channel + "\x00" + r.Source)
		var inj byte
		if r.Injected {
			inj = 1
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(frameBytes))); err != nil {
			return fmt.Errorf("trace: write binary: %w", err)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(meta))); err != nil {
			return fmt.Errorf("trace: write binary: %w", err)
		}
		if err := bw.WriteByte(inj); err != nil {
			return fmt.Errorf("trace: write binary: %w", err)
		}
		if _, err := bw.Write(frameBytes); err != nil {
			return fmt.Errorf("trace: write binary: %w", err)
		}
		if _, err := bw.Write(meta); err != nil {
			return fmt.Errorf("trace: write binary: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: write binary: %w", err)
	}
	return nil
}

// ReadBinary reads a trace written by WriteBinary. Unlike a pre-sizing
// reader, it grows the result as records actually decode, so a forged
// record count cannot force a huge allocation.
func ReadBinary(r io.Reader) (Trace, error) {
	return ReadAll(NewBinaryDecoder(r))
}
