package trace

import (
	"bytes"
	"strings"
	"testing"

	"canids/internal/can"
)

func FuzzReadCandump(f *testing.F) {
	f.Add("(1.000000) can0 123#DEADBEEF\n")
	f.Add("# comment\n\n(2.5) x 1#R\n")
	f.Add("(999999999.999999) vcan0 7FF#0102030405060708\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadCandump(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted logs must survive a write/read cycle unchanged.
		var buf bytes.Buffer
		if err := WriteCandump(&buf, tr); err != nil {
			t.Fatalf("WriteCandump of accepted trace: %v", err)
		}
		back, err := ReadCandump(&buf)
		if err != nil {
			t.Fatalf("re-read of written trace: %v", err)
		}
		if len(back) != len(tr) {
			t.Fatalf("round trip length %d != %d", len(back), len(tr))
		}
		for i := range tr {
			if !back[i].Frame.Equal(tr[i].Frame) || back[i].Time != tr[i].Time {
				t.Fatalf("record %d mismatch", i)
			}
		}
	})
}

func FuzzReadCSV(f *testing.F) {
	f.Add("time_us,channel,id,dlc,data,source,injected\n1000,ms,123,2,DEAD,ecu1,0\n")
	f.Add("time_us,channel,id,dlc,data,source,injected\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tr); err != nil {
			t.Fatalf("WriteCSV of accepted trace: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-read of written trace: %v", err)
		}
		if len(back) != len(tr) {
			t.Fatalf("round trip length %d != %d", len(back), len(tr))
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, Trace{{Frame: can.MustFrame(0x123, []byte{1, 2})}}); err == nil {
		f.Add(buf.Bytes())
	}
	f.Add([]byte("CTR1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; errors are fine.
		_, _ = ReadBinary(bytes.NewReader(data))
	})
}
