package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"canids/internal/can"
)

// Timestamp bounds accepted by the text decoders: the value must survive
// conversion to nanoseconds in an int64 (time.Duration).
const (
	maxLogSeconds = int64(math.MaxInt64)/int64(time.Second) - 1
	maxLogMicros  = int64(math.MaxInt64) / int64(time.Microsecond)
)

// Decoder yields the records of a log stream one at a time, in the order
// they were written. Next returns io.EOF after the last record. The
// streaming engine consumes logs through this interface, so a capture
// never has to fit in memory at once; the batch readers (ReadCandump,
// ReadCSV, ReadBinary) are ReadAll over the same decoders.
type Decoder interface {
	Next() (Record, error)
}

// Format identifies a trace log format.
type Format int

const (
	// FormatCandump is the candump -l text format (no ground truth).
	FormatCandump Format = iota + 1
	// FormatCSV is the Vehicle-Spy-like table with source + injected.
	FormatCSV
	// FormatBinary is the compact length-prefixed binary stream.
	FormatBinary
)

// String implements fmt.Stringer.
func (f Format) String() string {
	switch f {
	case FormatCandump:
		return "candump"
	case FormatCSV:
		return "csv"
	case FormatBinary:
		return "binary"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// FormatForPath picks the log format for a file path by extension:
// .csv and .bin map to their formats, anything else is candump text.
func FormatForPath(path string) Format {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".csv":
		return FormatCSV
	case ".bin":
		return FormatBinary
	default:
		return FormatCandump
	}
}

// NewDecoder returns a streaming decoder for the given format.
func NewDecoder(f Format, r io.Reader) (Decoder, error) {
	switch f {
	case FormatCandump:
		return NewCandumpDecoder(r), nil
	case FormatCSV:
		return NewCSVDecoder(r), nil
	case FormatBinary:
		return NewBinaryDecoder(r), nil
	default:
		return nil, fmt.Errorf("trace: unknown format %d", int(f))
	}
}

// Write writes the trace in the given format.
func Write(w io.Writer, f Format, t Trace) error {
	switch f {
	case FormatCandump:
		return WriteCandump(w, t)
	case FormatCSV:
		return WriteCSV(w, t)
	case FormatBinary:
		return WriteBinary(w, t)
	default:
		return fmt.Errorf("trace: unknown format %d", int(f))
	}
}

// ReadAll drains a decoder into a Trace.
func ReadAll(d Decoder) (Trace, error) {
	var out Trace
	for {
		rec, err := d.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// CandumpDecoder streams a candump -l text log.
type CandumpDecoder struct {
	sc   *bufio.Scanner
	line int
}

// NewCandumpDecoder creates a streaming candump reader.
func NewCandumpDecoder(r io.Reader) *CandumpDecoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &CandumpDecoder{sc: sc}
}

// Next implements Decoder.
func (d *CandumpDecoder) Next() (Record, error) {
	for d.sc.Scan() {
		d.line++
		text := strings.TrimSpace(d.sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return Record{}, fmt.Errorf("%w: line %d: %q", ErrSyntax, d.line, text)
		}
		ts := strings.Trim(fields[0], "()")
		secStr, usecStr, ok := strings.Cut(ts, ".")
		if !ok {
			return Record{}, fmt.Errorf("%w: line %d: timestamp %q", ErrSyntax, d.line, ts)
		}
		sec, err := strconv.ParseInt(secStr, 10, 64)
		if err != nil {
			return Record{}, fmt.Errorf("%w: line %d: %v", ErrSyntax, d.line, err)
		}
		usec, err := strconv.ParseInt(usecStr, 10, 64)
		if err != nil {
			return Record{}, fmt.Errorf("%w: line %d: %v", ErrSyntax, d.line, err)
		}
		// Negative or overflowing timestamps cannot round-trip through
		// time.Duration arithmetic; reject rather than wrap.
		if sec < 0 || sec > maxLogSeconds || usec < 0 || usec > 999_999 {
			return Record{}, fmt.Errorf("%w: line %d: timestamp %q out of range", ErrSyntax, d.line, ts)
		}
		frame, err := can.ParseFrame(fields[2])
		if err != nil {
			return Record{}, fmt.Errorf("trace: line %d: %w", d.line, err)
		}
		return Record{
			Time:    time.Duration(sec)*time.Second + time.Duration(usec)*time.Microsecond,
			Channel: fields[1],
			Frame:   frame,
		}, nil
	}
	if err := d.sc.Err(); err != nil {
		return Record{}, fmt.Errorf("trace: read candump: %w", err)
	}
	return Record{}, io.EOF
}

// CSVDecoder streams a trace written by WriteCSV.
type CSVDecoder struct {
	cr  *csv.Reader
	row int
}

// NewCSVDecoder creates a streaming CSV reader.
func NewCSVDecoder(r io.Reader) *CSVDecoder {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	return &CSVDecoder{cr: cr}
}

// Next implements Decoder.
func (d *CSVDecoder) Next() (Record, error) {
	for {
		row, err := d.cr.Read()
		if err == io.EOF {
			return Record{}, io.EOF
		}
		if err != nil {
			return Record{}, fmt.Errorf("trace: read csv: %w", err)
		}
		d.row++
		if d.row == 1 && row[0] == csvHeader[0] {
			continue // header
		}
		return parseCSVRow(row, d.row)
	}
}

// parseCSVRow decodes one data row; rowNum is 1-based for error messages.
func parseCSVRow(row []string, rowNum int) (Record, error) {
	us, err := strconv.ParseInt(row[0], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("%w: row %d: %v", ErrSyntax, rowNum, err)
	}
	if us < 0 || us > maxLogMicros {
		return Record{}, fmt.Errorf("%w: row %d: time_us %d out of range", ErrSyntax, rowNum, us)
	}
	idVal, err := strconv.ParseUint(row[2], 16, 32)
	if err != nil {
		return Record{}, fmt.Errorf("%w: row %d: %v", ErrSyntax, rowNum, err)
	}
	dlc, err := strconv.Atoi(row[3])
	if err != nil || dlc < 0 || dlc > can.MaxDataLen {
		return Record{}, fmt.Errorf("%w: row %d: bad dlc %q", ErrSyntax, rowNum, row[3])
	}
	var frame can.Frame
	frame.ID = can.ID(idVal)
	// As in candump text, more than three identifier digits means an
	// extended frame even when the value fits 11 bits.
	frame.Extended = len(row[2]) > 3 || frame.ID > can.MaxStandardID
	frame.Len = uint8(dlc)
	dataHex := row[4]
	if dataHex == "R" {
		frame.Remote = true
	} else {
		if len(dataHex) != dlc*2 {
			return Record{}, fmt.Errorf("%w: row %d: data length %d != dlc %d", ErrSyntax, rowNum, len(dataHex)/2, dlc)
		}
		for j := 0; j < dlc; j++ {
			b, err := strconv.ParseUint(dataHex[2*j:2*j+2], 16, 8)
			if err != nil {
				return Record{}, fmt.Errorf("%w: row %d: %v", ErrSyntax, rowNum, err)
			}
			frame.Data[j] = byte(b)
		}
	}
	return Record{
		Time:     time.Duration(us) * time.Microsecond,
		Channel:  row[1],
		Frame:    frame,
		Source:   row[5],
		Injected: row[6] == "1",
	}, nil
}

// BinaryDecoder streams a trace written by WriteBinary.
type BinaryDecoder struct {
	br      *bufio.Reader
	started bool
	count   uint64
	read    uint64
}

// NewBinaryDecoder creates a streaming binary reader.
func NewBinaryDecoder(r io.Reader) *BinaryDecoder {
	return &BinaryDecoder{br: bufio.NewReader(r)}
}

// Next implements Decoder.
func (d *BinaryDecoder) Next() (Record, error) {
	if !d.started {
		d.started = true
		var magic [4]byte
		if _, err := io.ReadFull(d.br, magic[:]); err != nil {
			return Record{}, fmt.Errorf("trace: read binary: %w", err)
		}
		if magic != binaryMagic {
			return Record{}, fmt.Errorf("trace: read binary: bad magic %q", magic[:])
		}
		if err := binary.Read(d.br, binary.LittleEndian, &d.count); err != nil {
			return Record{}, fmt.Errorf("trace: read binary: %w", err)
		}
	}
	if d.read >= d.count {
		return Record{}, io.EOF
	}
	i := d.read
	var ts int64
	if err := binary.Read(d.br, binary.LittleEndian, &ts); err != nil {
		return Record{}, fmt.Errorf("trace: read binary record %d: %w", i, err)
	}
	var frameLen, metaLen uint16
	if err := binary.Read(d.br, binary.LittleEndian, &frameLen); err != nil {
		return Record{}, fmt.Errorf("trace: read binary record %d: %w", i, err)
	}
	if err := binary.Read(d.br, binary.LittleEndian, &metaLen); err != nil {
		return Record{}, fmt.Errorf("trace: read binary record %d: %w", i, err)
	}
	inj, err := d.br.ReadByte()
	if err != nil {
		return Record{}, fmt.Errorf("trace: read binary record %d: %w", i, err)
	}
	frameBytes := make([]byte, frameLen)
	if _, err := io.ReadFull(d.br, frameBytes); err != nil {
		return Record{}, fmt.Errorf("trace: read binary record %d: %w", i, err)
	}
	meta := make([]byte, metaLen)
	if _, err := io.ReadFull(d.br, meta); err != nil {
		return Record{}, fmt.Errorf("trace: read binary record %d: %w", i, err)
	}
	var rec Record
	rec.Time = time.Duration(ts)
	if err := rec.Frame.UnmarshalBinary(frameBytes); err != nil {
		return Record{}, fmt.Errorf("trace: read binary record %d: %w", i, err)
	}
	channel, source, _ := strings.Cut(string(meta), "\x00")
	rec.Channel = channel
	rec.Source = source
	rec.Injected = inj == 1
	d.read++
	return rec, nil
}
