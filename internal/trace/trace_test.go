package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"canids/internal/can"
)

func sampleTrace() Trace {
	return Trace{
		{Time: 0, Frame: can.MustFrame(0x100, []byte{1}), Channel: "ms-can", Source: "ecu1"},
		{Time: 10 * time.Millisecond, Frame: can.MustFrame(0x200, []byte{2, 3}), Channel: "ms-can", Source: "ecu2"},
		{Time: 20 * time.Millisecond, Frame: can.MustFrame(0x0A0, nil), Channel: "ms-can", Source: "mal", Injected: true},
		{Time: 1500 * time.Millisecond, Frame: can.MustFrame(0x100, []byte{4}), Channel: "ms-can", Source: "ecu1"},
	}
}

func TestTraceSortAndDuration(t *testing.T) {
	tr := sampleTrace()
	// Shuffle then sort.
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(tr), func(i, j int) { tr[i], tr[j] = tr[j], tr[i] })
	tr.Sort()
	for i := 1; i < len(tr); i++ {
		if tr[i-1].Time > tr[i].Time {
			t.Fatal("trace not sorted")
		}
	}
	if got, want := tr.Duration(), 1500*time.Millisecond; got != want {
		t.Errorf("Duration = %v, want %v", got, want)
	}
	if (Trace{}).Duration() != 0 {
		t.Error("empty trace duration should be 0")
	}
}

func TestTraceSlice(t *testing.T) {
	tr := sampleTrace()
	got := tr.Slice(5*time.Millisecond, 25*time.Millisecond)
	if len(got) != 2 {
		t.Fatalf("Slice returned %d records, want 2", len(got))
	}
	if got[0].Frame.ID != 0x200 || got[1].Frame.ID != 0x0A0 {
		t.Errorf("unexpected slice contents: %v", got)
	}
}

func TestTraceWindows(t *testing.T) {
	tr := sampleTrace()
	ws := tr.Windows(time.Second, true)
	if len(ws) != 2 {
		t.Fatalf("Windows = %d, want 2", len(ws))
	}
	if len(ws[0]) != 3 || len(ws[1]) != 1 {
		t.Errorf("window sizes = %d,%d want 3,1", len(ws[0]), len(ws[1]))
	}
	if got := tr.Windows(0, true); got != nil {
		t.Error("zero-length windows should return nil")
	}
}

func TestTraceFilterAndCounts(t *testing.T) {
	tr := sampleTrace()
	inj := tr.Filter(func(r Record) bool { return r.Injected })
	if len(inj) != 1 || tr.CountInjected() != 1 {
		t.Errorf("injected count mismatch: filter=%d count=%d", len(inj), tr.CountInjected())
	}
	ids := tr.IDs()
	if len(ids) != 3 || ids[0] != 0x0A0 || ids[2] != 0x200 {
		t.Errorf("IDs = %v", ids)
	}
	counts := tr.IDCounts()
	if counts[0x100] != 2 {
		t.Errorf("count[0x100] = %d, want 2", counts[0x100])
	}
}

func TestCandumpRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteCandump(&buf, tr); err != nil {
		t.Fatalf("WriteCandump: %v", err)
	}
	got, err := ReadCandump(&buf)
	if err != nil {
		t.Fatalf("ReadCandump: %v", err)
	}
	if len(got) != len(tr) {
		t.Fatalf("len = %d, want %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i].Time != tr[i].Time || !got[i].Frame.Equal(tr[i].Frame) || got[i].Channel != tr[i].Channel {
			t.Errorf("record %d mismatch: %+v vs %+v", i, got[i], tr[i])
		}
		// candump drops provenance by design.
		if got[i].Source != "" || got[i].Injected {
			t.Errorf("record %d: candump should not carry ground truth", i)
		}
	}
}

func TestReadCandumpSkipsCommentsAndBlank(t *testing.T) {
	input := "# comment\n\n(1.000000) can0 123#AB\n"
	got, err := ReadCandump(strings.NewReader(input))
	if err != nil {
		t.Fatalf("ReadCandump: %v", err)
	}
	if len(got) != 1 || got[0].Frame.ID != 0x123 {
		t.Errorf("got %v", got)
	}
}

func TestReadCandumpErrors(t *testing.T) {
	bad := []string{
		"(1.0) can0",                  // missing frame
		"(x.000000) can0 123#AB",      // bad seconds
		"(1.00000x) can0 123#AB",      // bad microseconds
		"(1000000) can0 123#AB",       // no dot
		"(1.000000) can0 123#AB meta", // extra field
	}
	for _, s := range bad {
		if _, err := ReadCandump(strings.NewReader(s)); err == nil {
			t.Errorf("ReadCandump(%q) succeeded, want error", s)
		}
	}
	if _, err := ReadCandump(strings.NewReader("(1.0) can0 123#ZZ")); err == nil {
		t.Error("bad frame hex should fail")
	}
}

func TestCSVRoundTripPreservesGroundTruth(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(got) != len(tr) {
		t.Fatalf("len = %d, want %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Errorf("record %d: %+v vs %+v", i, got[i], tr[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	rows := []string{
		"time_us,channel,id,dlc,data,source,injected\nx,ms,100,0,,a,0",
		"time_us,channel,id,dlc,data,source,injected\n1,ms,ZZZ,0,,a,0",
		"time_us,channel,id,dlc,data,source,injected\n1,ms,100,9,,a,0",
		"time_us,channel,id,dlc,data,source,injected\n1,ms,100,2,AB,a,0",
	}
	for _, s := range rows {
		if _, err := ReadCSV(strings.NewReader(s)); err == nil {
			t.Errorf("ReadCSV(%q) succeeded, want error", s)
		}
	}
}

func TestReadCSVEmpty(t *testing.T) {
	got, err := ReadCSV(strings.NewReader(""))
	if err != nil || got != nil {
		t.Errorf("empty csv: got %v, %v", got, err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if len(got) != len(tr) {
		t.Fatalf("len = %d, want %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Errorf("record %d mismatch: %+v vs %+v", i, got[i], tr[i])
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	_, err := ReadBinary(bytes.NewReader([]byte("NOPE....")))
	if err == nil {
		t.Error("bad magic should fail")
	}
}

func TestBinaryTruncated(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{5, 13, len(raw) - 3} {
		if _, err := ReadBinary(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestCandumpLargeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var tr Trace
	for i := 0; i < 5000; i++ {
		n := rng.Intn(9)
		data := make([]byte, n)
		rng.Read(data)
		tr = append(tr, Record{
			Time:    time.Duration(i) * time.Millisecond,
			Frame:   can.MustFrame(can.ID(rng.Intn(0x800)), data),
			Channel: "can0",
		})
	}
	var buf bytes.Buffer
	if err := WriteCandump(&buf, tr); err != nil {
		t.Fatalf("WriteCandump: %v", err)
	}
	got, err := ReadCandump(&buf)
	if err != nil {
		t.Fatalf("ReadCandump: %v", err)
	}
	for i := range tr {
		if !got[i].Frame.Equal(tr[i].Frame) || got[i].Time != tr[i].Time {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

var errSentinel = errors.New("x")

// failWriter fails after n bytes to exercise writer error paths.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errSentinel
	}
	if len(p) > w.n {
		p = p[:w.n]
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWriteErrorsPropagate(t *testing.T) {
	tr := sampleTrace()
	if err := WriteCandump(&failWriter{n: 10}, tr); err == nil {
		t.Error("WriteCandump should propagate write errors")
	}
	if err := WriteBinary(&failWriter{n: 10}, tr); err == nil {
		t.Error("WriteBinary should propagate write errors")
	}
	if err := WriteCSV(&failWriter{n: 4}, tr); err == nil {
		t.Error("WriteCSV should propagate write errors")
	}
}
