// Package trace defines timestamped CAN records with attack ground truth,
// plus log readers and writers in three formats:
//
//   - candump text ("(1690000000.123456) can0 123#DEADBEEF"), the de-facto
//     exchange format, which carries no ground truth;
//   - CSV, a Vehicle-Spy-like table that preserves the source node and the
//     injected flag, used for scored experiments;
//   - a compact binary stream for large traces.
package trace

import (
	"sort"
	"time"

	"canids/internal/can"
)

// Record is one observed frame on the bus.
type Record struct {
	// Time is the virtual (or absolute) timestamp of the frame's start of
	// transmission, measured from the beginning of the trace.
	Time time.Duration
	// Frame is the observed CAN frame.
	Frame can.Frame
	// Channel names the bus, e.g. "ms-can" or "can0".
	Channel string
	// Source names the transmitting node, when known. Empty for logs
	// imported from formats without provenance.
	Source string
	// Injected is the attack ground truth: true if the frame was placed
	// on the bus by an attacker.
	Injected bool
}

// Trace is an ordered sequence of records.
type Trace []Record

// Sort orders the trace by timestamp, stably, in place.
func (t Trace) Sort() {
	sort.SliceStable(t, func(i, j int) bool { return t[i].Time < t[j].Time })
}

// Duration returns the time span covered by the trace (last minus first
// timestamp), or zero for traces with fewer than two records.
func (t Trace) Duration() time.Duration {
	if len(t) < 2 {
		return 0
	}
	return t[len(t)-1].Time - t[0].Time
}

// Slice returns the records with Time in [from, to). The trace must be
// sorted by time.
func (t Trace) Slice(from, to time.Duration) Trace {
	lo := sort.Search(len(t), func(i int) bool { return t[i].Time >= from })
	hi := sort.Search(len(t), func(i int) bool { return t[i].Time >= to })
	return t[lo:hi]
}

// Windows cuts the trace into consecutive windows of the given length,
// starting at the first record's timestamp. The final partial window is
// included only if includePartial is set. The trace must be sorted.
func (t Trace) Windows(length time.Duration, includePartial bool) []Trace {
	if len(t) == 0 || length <= 0 {
		return nil
	}
	var out []Trace
	start := t[0].Time
	end := t[len(t)-1].Time
	for from := start; from <= end; from += length {
		w := t.Slice(from, from+length)
		if from+length > end+1 && !includePartial {
			break
		}
		out = append(out, w)
	}
	return out
}

// Filter returns the records for which keep returns true.
func (t Trace) Filter(keep func(Record) bool) Trace {
	var out Trace
	for _, r := range t {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

// CountInjected returns the number of injected (ground-truth attack)
// records.
func (t Trace) CountInjected() int {
	n := 0
	for _, r := range t {
		if r.Injected {
			n++
		}
	}
	return n
}

// IDs returns the distinct identifiers appearing in the trace, ascending.
func (t Trace) IDs() []can.ID {
	seen := make(map[can.ID]bool)
	for _, r := range t {
		seen[r.Frame.ID] = true
	}
	ids := make([]can.ID, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// IDCounts returns the per-identifier frame counts.
func (t Trace) IDCounts() map[can.ID]int {
	counts := make(map[can.ID]int)
	for _, r := range t {
		counts[r.Frame.ID]++
	}
	return counts
}
