package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"canids/internal/can"
)

// TestRoundTripFrameFlags pins that no format silently drops the frame
// flags a capture can carry: extended identifiers that fit 11 bits and
// remote frames with a DLC survive write→decode in every format that
// can represent them (candump and CSV encode them candump-style; the
// binary layout stores the flags directly).
func TestRoundTripFrameFlags(t *testing.T) {
	tr := Trace{
		{Time: 1 * time.Millisecond, Channel: "c0", Frame: can.Frame{ID: 0x0F2, Extended: true}},
		{Time: 2 * time.Millisecond, Channel: "c0", Frame: can.Frame{ID: 0x100, Remote: true, Len: 4}},
		{Time: 3 * time.Millisecond, Channel: "c0", Frame: can.MustFrame(0x123, []byte{0xAB}), Source: "ecu", Injected: true},
	}
	for _, f := range []Format{FormatCandump, FormatCSV, FormatBinary} {
		var buf bytes.Buffer
		if err := Write(&buf, f, tr); err != nil {
			t.Fatalf("%v: write: %v", f, err)
		}
		dec, err := NewDecoder(f, &buf)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ReadAll(dec)
		if err != nil {
			t.Fatalf("%v: read: %v", f, err)
		}
		if len(back) != len(tr) {
			t.Fatalf("%v: %d records back, want %d", f, len(back), len(tr))
		}
		for i := range tr {
			if !back[i].Frame.Equal(tr[i].Frame) {
				t.Errorf("%v: record %d frame mutated: got %+v want %+v", f, i, back[i].Frame, tr[i].Frame)
			}
			if back[i].Time != tr[i].Time {
				t.Errorf("%v: record %d time mutated", f, i)
			}
		}
	}
}

// TestDecoderStreamsIncrementally checks a decoder yields records one
// at a time rather than reading ahead to the end.
func TestDecoderStreamsIncrementally(t *testing.T) {
	var buf bytes.Buffer
	tr := Trace{
		{Time: time.Second, Frame: can.MustFrame(0x123, []byte{1})},
		{Time: 2 * time.Second, Frame: can.MustFrame(0x124, []byte{2})},
	}
	if err := WriteCandump(&buf, tr); err != nil {
		t.Fatal(err)
	}
	d := NewCandumpDecoder(&buf)
	r1, err := d.Next()
	if err != nil || r1.Frame.ID != 0x123 {
		t.Fatalf("first record: %v %v", r1, err)
	}
	r2, err := d.Next()
	if err != nil || r2.Frame.ID != 0x124 {
		t.Fatalf("second record: %v %v", r2, err)
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
}

func TestFormatForPath(t *testing.T) {
	cases := map[string]Format{
		"a.csv": FormatCSV, "A.CSV": FormatCSV,
		"a.bin": FormatBinary, "x/y/z.log": FormatCandump, "noext": FormatCandump,
	}
	for path, want := range cases {
		if got := FormatForPath(path); got != want {
			t.Errorf("FormatForPath(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestDecoderRejectsOutOfRangeTimestamps(t *testing.T) {
	if _, err := ReadCandump(strings.NewReader("(9223372036.000000) c0 123#00\n")); err == nil {
		t.Error("candump accepted an ns-overflowing timestamp")
	}
	if _, err := ReadCandump(strings.NewReader("(-1.000000) c0 123#00\n")); err == nil {
		t.Error("candump accepted a negative timestamp")
	}
	if _, err := ReadCSV(strings.NewReader("9223372036854775807,c,123,0,,x,0\n")); err == nil {
		t.Error("csv accepted a µs-overflowing timestamp")
	}
}
