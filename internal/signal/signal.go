// Package signal implements DBC-style CAN signal packing: extraction and
// insertion of scaled physical values from frame payloads, with both
// Intel (little-endian) and Motorola (big-endian) bit ordering.
//
// It is the substrate for building realistic vehicle profiles — payload
// generators can speak in physical units (km/h, °C, rpm) instead of raw
// bytes — and for decoding captured traffic in tooling.
//
// Bit numbering follows the DBC convention: bit b of a payload lives in
// byte b/8 at in-byte position b%8 with 0 = least significant. Intel
// signals grow upward from StartBit (which holds the LSB); Motorola
// signals grow downward in the sawtooth order (StartBit holds the MSB).
package signal

import (
	"errors"
	"fmt"
	"math"

	"canids/internal/can"
)

// ByteOrder selects the signal bit ordering.
type ByteOrder int

const (
	// Intel is little-endian (DBC byte order 1).
	Intel ByteOrder = iota + 1
	// Motorola is big-endian (DBC byte order 0).
	Motorola
)

// String implements fmt.Stringer.
func (o ByteOrder) String() string {
	switch o {
	case Intel:
		return "intel"
	case Motorola:
		return "motorola"
	default:
		return fmt.Sprintf("ByteOrder(%d)", int(o))
	}
}

// Errors returned by signal operations.
var (
	ErrRange    = errors.New("signal: value outside physical range")
	ErrLayout   = errors.New("signal: layout does not fit payload")
	ErrOverlap  = errors.New("signal: signals overlap")
	ErrNotFound = errors.New("signal: signal not found")
)

// Signal describes one field inside a CAN payload.
type Signal struct {
	// Name identifies the signal within its message.
	Name string
	// StartBit is the DBC start bit (LSB for Intel, MSB for Motorola).
	StartBit int
	// Length is the field width in bits, 1..64.
	Length int
	// Order is the bit ordering.
	Order ByteOrder
	// Signed interprets the raw field as two's complement.
	Signed bool
	// Scale and Offset map raw to physical: phys = raw·Scale + Offset.
	// A zero Scale is treated as 1.
	Scale, Offset float64
	// Min and Max bound the physical value; both zero disables the
	// check.
	Min, Max float64
	// Unit is a human-readable unit label.
	Unit string
}

// scale returns the effective scale factor.
func (s Signal) scale() float64 {
	if s.Scale == 0 {
		return 1
	}
	return s.Scale
}

// bits returns the payload bit positions of the signal from LSB to MSB,
// or an error when the layout is invalid for the given DLC.
func (s Signal) bits(dlc int) ([]int, error) {
	if s.Length < 1 || s.Length > 64 {
		return nil, fmt.Errorf("%w: length %d", ErrLayout, s.Length)
	}
	if s.StartBit < 0 || s.StartBit >= dlc*8 {
		return nil, fmt.Errorf("%w: start bit %d with DLC %d", ErrLayout, s.StartBit, dlc)
	}
	out := make([]int, s.Length)
	switch s.Order {
	case Intel:
		for i := 0; i < s.Length; i++ {
			out[i] = s.StartBit + i
		}
	case Motorola:
		// Walk MSB→LSB in the sawtooth order, then reverse into
		// LSB-first.
		pos := s.StartBit
		for i := 0; i < s.Length; i++ {
			out[s.Length-1-i] = pos
			if pos%8 == 0 {
				pos += 15
			} else {
				pos--
			}
		}
	default:
		return nil, fmt.Errorf("%w: unknown byte order %d", ErrLayout, int(s.Order))
	}
	for _, b := range out {
		if b < 0 || b >= dlc*8 {
			return nil, fmt.Errorf("%w: bit %d with DLC %d", ErrLayout, b, dlc)
		}
	}
	return out, nil
}

// DecodeRaw extracts the unsigned raw field value.
func (s Signal) DecodeRaw(data []byte) (uint64, error) {
	bits, err := s.bits(len(data))
	if err != nil {
		return 0, err
	}
	var raw uint64
	for i, b := range bits {
		raw |= uint64(data[b/8]>>(b%8)&1) << i
	}
	return raw, nil
}

// Decode extracts the physical value.
func (s Signal) Decode(data []byte) (float64, error) {
	raw, err := s.DecodeRaw(data)
	if err != nil {
		return 0, err
	}
	var val float64
	if s.Signed && s.Length < 64 && raw&(1<<(s.Length-1)) != 0 {
		val = float64(int64(raw | ^uint64(0)<<s.Length))
	} else if s.Signed {
		val = float64(int64(raw))
	} else {
		val = float64(raw)
	}
	return val*s.scale() + s.Offset, nil
}

// EncodeRaw inserts an unsigned raw field value in place.
func (s Signal) EncodeRaw(data []byte, raw uint64) error {
	bits, err := s.bits(len(data))
	if err != nil {
		return err
	}
	if s.Length < 64 && raw >= 1<<s.Length && !s.Signed {
		return fmt.Errorf("%w: raw %d exceeds %d bits", ErrRange, raw, s.Length)
	}
	for i, b := range bits {
		mask := byte(1) << (b % 8)
		if raw>>i&1 != 0 {
			data[b/8] |= mask
		} else {
			data[b/8] &^= mask
		}
	}
	return nil
}

// Encode inserts a physical value in place, applying offset, scale and
// range checks. The value is rounded to the nearest raw step.
func (s Signal) Encode(data []byte, value float64) error {
	if s.Min != 0 || s.Max != 0 {
		if value < s.Min || value > s.Max {
			return fmt.Errorf("%w: %v not in [%v, %v] %s", ErrRange, value, s.Min, s.Max, s.Unit)
		}
	}
	raw := math.Round((value - s.Offset) / s.scale())
	if s.Signed {
		lo := -(int64(1) << (s.Length - 1))
		hi := int64(1)<<(s.Length-1) - 1
		if int64(raw) < lo || int64(raw) > hi {
			return fmt.Errorf("%w: raw %v outside signed %d-bit field", ErrRange, raw, s.Length)
		}
		mask := uint64(1)<<s.Length - 1
		return s.EncodeRaw(data, uint64(int64(raw))&mask)
	}
	if raw < 0 || (s.Length < 64 && raw >= float64(uint64(1)<<s.Length)) {
		return fmt.Errorf("%w: raw %v outside unsigned %d-bit field", ErrRange, raw, s.Length)
	}
	return s.EncodeRaw(data, uint64(raw))
}

// Message groups the signals of one CAN identifier.
type Message struct {
	// ID is the frame identifier carrying this message.
	ID can.ID
	// Name labels the message.
	Name string
	// DLC is the payload length in bytes.
	DLC int
	// Signals are the packed fields.
	Signals []Signal
}

// Validate checks the layout: every signal fits the DLC and no two
// signals overlap.
func (m Message) Validate() error {
	if m.DLC < 0 || m.DLC > can.MaxDataLen {
		return fmt.Errorf("%w: DLC %d", ErrLayout, m.DLC)
	}
	used := make(map[int]string, m.DLC*8)
	for _, s := range m.Signals {
		bits, err := s.bits(m.DLC)
		if err != nil {
			return fmt.Errorf("signal %q: %w", s.Name, err)
		}
		for _, b := range bits {
			if other, taken := used[b]; taken {
				return fmt.Errorf("%w: %q and %q share bit %d", ErrOverlap, other, s.Name, b)
			}
			used[b] = s.Name
		}
	}
	return nil
}

// Signal returns the named signal.
func (m Message) Signal(name string) (Signal, bool) {
	for _, s := range m.Signals {
		if s.Name == name {
			return s, true
		}
	}
	return Signal{}, false
}

// Decode extracts every signal's physical value from a frame.
func (m Message) Decode(f can.Frame) (map[string]float64, error) {
	if f.ID != m.ID {
		return nil, fmt.Errorf("signal: frame ID %s does not match message %s", f.ID, m.ID)
	}
	data := f.Payload()
	out := make(map[string]float64, len(m.Signals))
	for _, s := range m.Signals {
		v, err := s.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("signal %q: %w", s.Name, err)
		}
		out[s.Name] = v
	}
	return out, nil
}

// Encode builds a frame carrying the given physical values. Signals not
// present in values are encoded as zero raw.
func (m Message) Encode(values map[string]float64) (can.Frame, error) {
	data := make([]byte, m.DLC)
	for _, s := range m.Signals {
		v, ok := values[s.Name]
		if !ok {
			continue
		}
		if err := s.Encode(data, v); err != nil {
			return can.Frame{}, fmt.Errorf("signal %q: %w", s.Name, err)
		}
	}
	return can.NewFrame(m.ID, data)
}

// Database maps identifiers to message definitions, like a DBC file.
type Database struct {
	messages map[can.ID]Message
}

// NewDatabase builds a database, validating every message layout and
// rejecting duplicate identifiers.
func NewDatabase(messages ...Message) (*Database, error) {
	db := &Database{messages: make(map[can.ID]Message, len(messages))}
	for _, m := range messages {
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("message %q: %w", m.Name, err)
		}
		if _, dup := db.messages[m.ID]; dup {
			return nil, fmt.Errorf("signal: duplicate message ID %s", m.ID)
		}
		db.messages[m.ID] = m
	}
	return db, nil
}

// Message returns the definition for an identifier.
func (db *Database) Message(id can.ID) (Message, bool) {
	m, ok := db.messages[id]
	return m, ok
}

// Len returns the number of message definitions.
func (db *Database) Len() int { return len(db.messages) }

// Decode resolves a frame against the database and decodes its signals.
// Frames with unknown identifiers return ErrNotFound.
func (db *Database) Decode(f can.Frame) (map[string]float64, error) {
	m, ok := db.messages[f.ID]
	if !ok {
		return nil, fmt.Errorf("%w: ID %s", ErrNotFound, f.ID)
	}
	return m.Decode(f)
}
