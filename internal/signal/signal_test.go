package signal

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"canids/internal/can"
)

func TestByteOrderString(t *testing.T) {
	if Intel.String() != "intel" || Motorola.String() != "motorola" {
		t.Error("order strings wrong")
	}
	if ByteOrder(7).String() != "ByteOrder(7)" {
		t.Error("unknown order string")
	}
}

func TestIntelRoundTrip(t *testing.T) {
	s := Signal{Name: "speed", StartBit: 8, Length: 16, Order: Intel, Scale: 0.01, Unit: "km/h"}
	data := make([]byte, 8)
	if err := s.Encode(data, 123.45); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := s.Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if math.Abs(got-123.45) > 0.01 {
		t.Errorf("round trip %v, want 123.45", got)
	}
	// Raw layout: 12345 = 0x3039 little-endian at byte 1.
	if data[1] != 0x39 || data[2] != 0x30 {
		t.Errorf("raw bytes % X", data)
	}
}

func TestMotorolaRoundTrip(t *testing.T) {
	// Classic DBC big-endian signal: start bit 7 (MSB of byte 0),
	// 16 bits → bytes 0..1 big-endian.
	s := Signal{Name: "rpm", StartBit: 7, Length: 16, Order: Motorola, Scale: 0.25}
	data := make([]byte, 8)
	if err := s.Encode(data, 4000); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if data[0] != 0x3E || data[1] != 0x80 { // 16000 = 0x3E80
		t.Errorf("raw bytes % X, want 3E 80 ...", data[:2])
	}
	got, err := s.Decode(data)
	if err != nil || got != 4000 {
		t.Errorf("Decode = %v, %v", got, err)
	}
}

func TestMotorolaSawtoothCrossesBytes(t *testing.T) {
	// 12-bit Motorola signal starting at bit 3: spans byte 0 bits 3..0
	// then byte 1 bits 7..0.
	s := Signal{Name: "x", StartBit: 3, Length: 12, Order: Motorola}
	data := make([]byte, 2)
	if err := s.EncodeRaw(data, 0xABC); err != nil {
		t.Fatalf("EncodeRaw: %v", err)
	}
	raw, err := s.DecodeRaw(data)
	if err != nil || raw != 0xABC {
		t.Errorf("raw round trip = %#x, %v", raw, err)
	}
	if data[0] != 0x0A || data[1] != 0xBC {
		t.Errorf("bytes % X, want 0A BC", data)
	}
}

func TestSignedSignals(t *testing.T) {
	s := Signal{Name: "temp", StartBit: 0, Length: 8, Order: Intel, Signed: true, Offset: 0, Scale: 0.5}
	data := make([]byte, 1)
	if err := s.Encode(data, -20.5); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := s.Decode(data)
	if err != nil || got != -20.5 {
		t.Errorf("signed round trip = %v, %v", got, err)
	}
	// Signed range limits.
	if err := s.Encode(data, 64); err == nil { // raw 128 > 127
		t.Error("overflow of signed field should fail")
	}
	if err := s.Encode(data, -64.5); err == nil { // raw -129 < -128
		t.Error("underflow of signed field should fail")
	}
}

func TestPhysicalRangeCheck(t *testing.T) {
	s := Signal{Name: "pct", StartBit: 0, Length: 8, Order: Intel, Min: 0, Max: 100}
	data := make([]byte, 1)
	if err := s.Encode(data, 101); !errors.Is(err, ErrRange) {
		t.Errorf("above max: %v", err)
	}
	if err := s.Encode(data, -1); !errors.Is(err, ErrRange) {
		t.Errorf("below min: %v", err)
	}
	if err := s.Encode(data, 55); err != nil {
		t.Errorf("in range: %v", err)
	}
}

func TestLayoutErrors(t *testing.T) {
	data := make([]byte, 2)
	cases := []Signal{
		{StartBit: 0, Length: 0, Order: Intel},
		{StartBit: 0, Length: 65, Order: Intel},
		{StartBit: 16, Length: 4, Order: Intel},    // start outside DLC
		{StartBit: 12, Length: 8, Order: Intel},    // runs past payload
		{StartBit: 0, Length: 4, Order: 0},         // no byte order
		{StartBit: 0, Length: 12, Order: Motorola}, // sawtooth runs past end
	}
	for i, s := range cases {
		if _, err := s.DecodeRaw(data); !errors.Is(err, ErrLayout) {
			t.Errorf("case %d: got %v, want ErrLayout", i, err)
		}
	}
}

func TestEncodeRawOverflow(t *testing.T) {
	s := Signal{StartBit: 0, Length: 4, Order: Intel}
	data := make([]byte, 1)
	if err := s.EncodeRaw(data, 16); !errors.Is(err, ErrRange) {
		t.Errorf("raw overflow: %v", err)
	}
}

func TestQuickIntelRoundTrip(t *testing.T) {
	prop := func(startRaw, lenRaw uint8, value uint64) bool {
		length := int(lenRaw)%32 + 1
		start := int(startRaw) % (64 - length)
		s := Signal{StartBit: start, Length: length, Order: Intel}
		raw := value & (1<<length - 1)
		data := make([]byte, 8)
		if err := s.EncodeRaw(data, raw); err != nil {
			return false
		}
		got, err := s.DecodeRaw(data)
		return err == nil && got == raw
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickMotorolaRoundTrip(t *testing.T) {
	prop := func(byteRaw, lenRaw uint8, value uint64) bool {
		// Byte-aligned Motorola starts (MSB of a byte) with lengths that
		// stay inside the payload.
		startByte := int(byteRaw) % 6
		length := int(lenRaw)%16 + 1
		s := Signal{StartBit: startByte*8 + 7, Length: length, Order: Motorola}
		raw := value & (1<<length - 1)
		data := make([]byte, 8)
		if err := s.EncodeRaw(data, raw); err != nil {
			return false
		}
		got, err := s.DecodeRaw(data)
		return err == nil && got == raw
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickEncodeDoesNotDisturbNeighbours(t *testing.T) {
	prop := func(value uint64) bool {
		a := Signal{Name: "a", StartBit: 0, Length: 12, Order: Intel}
		b := Signal{Name: "b", StartBit: 12, Length: 12, Order: Intel}
		data := make([]byte, 3)
		if err := a.EncodeRaw(data, 0xFFF); err != nil {
			return false
		}
		if err := b.EncodeRaw(data, value&0xFFF); err != nil {
			return false
		}
		got, err := a.DecodeRaw(data)
		return err == nil && got == 0xFFF
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func wheelSpeedMessage() Message {
	return Message{
		ID: 0x0B4, Name: "WheelSpeeds", DLC: 8,
		Signals: []Signal{
			{Name: "fl", StartBit: 0, Length: 16, Order: Intel, Scale: 0.01, Min: 0, Max: 300, Unit: "km/h"},
			{Name: "fr", StartBit: 16, Length: 16, Order: Intel, Scale: 0.01, Min: 0, Max: 300, Unit: "km/h"},
			{Name: "rl", StartBit: 32, Length: 16, Order: Intel, Scale: 0.01, Min: 0, Max: 300, Unit: "km/h"},
			{Name: "rr", StartBit: 48, Length: 16, Order: Intel, Scale: 0.01, Min: 0, Max: 300, Unit: "km/h"},
		},
	}
}

func TestMessageEncodeDecode(t *testing.T) {
	m := wheelSpeedMessage()
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	f, err := m.Encode(map[string]float64{"fl": 88.5, "fr": 88.25, "rl": 90, "rr": 89.75})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	vals, err := m.Decode(f)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	for name, want := range map[string]float64{"fl": 88.5, "fr": 88.25, "rl": 90, "rr": 89.75} {
		if math.Abs(vals[name]-want) > 0.005 {
			t.Errorf("%s = %v, want %v", name, vals[name], want)
		}
	}
	if _, ok := m.Signal("fl"); !ok {
		t.Error("Signal lookup failed")
	}
	if _, ok := m.Signal("nope"); ok {
		t.Error("unknown signal lookup should fail")
	}
}

func TestMessageDecodeWrongID(t *testing.T) {
	m := wheelSpeedMessage()
	if _, err := m.Decode(can.MustFrame(0x123, make([]byte, 8))); err == nil {
		t.Error("wrong ID should fail")
	}
}

func TestMessageValidateOverlap(t *testing.T) {
	m := Message{
		ID: 0x100, Name: "bad", DLC: 2,
		Signals: []Signal{
			{Name: "a", StartBit: 0, Length: 10, Order: Intel},
			{Name: "b", StartBit: 8, Length: 4, Order: Intel},
		},
	}
	if err := m.Validate(); !errors.Is(err, ErrOverlap) {
		t.Errorf("overlap: %v", err)
	}
}

func TestDatabase(t *testing.T) {
	m := wheelSpeedMessage()
	db, err := NewDatabase(m)
	if err != nil {
		t.Fatalf("NewDatabase: %v", err)
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d", db.Len())
	}
	f, err := m.Encode(map[string]float64{"fl": 50})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := db.Decode(f)
	if err != nil || vals["fl"] != 50 {
		t.Errorf("db.Decode = %v, %v", vals, err)
	}
	if _, err := db.Decode(can.MustFrame(0x7FF, nil)); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown ID: %v", err)
	}
	if _, ok := db.Message(0x0B4); !ok {
		t.Error("Message lookup failed")
	}
	// Duplicate IDs rejected.
	if _, err := NewDatabase(m, m); err == nil {
		t.Error("duplicate IDs should fail")
	}
	// Invalid layout rejected.
	bad := Message{ID: 1, DLC: 1, Signals: []Signal{{StartBit: 0, Length: 16, Order: Intel}}}
	if _, err := NewDatabase(bad); err == nil {
		t.Error("invalid layout should fail")
	}
}
