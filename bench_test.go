// Benchmarks regenerating the paper's evaluation. One benchmark per
// table/figure (run with -bench to print the reproduced tables via
// -v + b.Log), plus the per-message update-cost and memory comparisons
// behind Section V.E, and ablation benches for the design knobs called
// out in DESIGN.md.
package canids

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"

	"canids/internal/engine"
	"canids/internal/engine/scenario"
	"testing"
	"time"

	"canids/internal/attack"
	"canids/internal/baseline"
	"canids/internal/bus"
	"canids/internal/can"
	"canids/internal/core"
	"canids/internal/detect"
	"canids/internal/entropy"
	"canids/internal/experiments"
	"canids/internal/gateway"
	"canids/internal/infer"
	"canids/internal/metrics"
	"canids/internal/response"
	"canids/internal/server"
	"canids/internal/sim"
	"canids/internal/store"
	"canids/internal/trace"
	"canids/internal/vehicle"
)

// --- Paper tables and figures -------------------------------------------

// Each experiment benchmark resets the pipeline cache once before its
// timed loop, so the first iteration is a true cold run regardless of
// which benchmarks ran earlier in the process, and later iterations
// measure the warm (trace-cached) pipeline — both numbers are
// meaningful and order-independent.

// BenchmarkFig2GoldenTemplate regenerates Fig. 2: training the golden
// template across driving scenarios and measuring an attacked window.
func BenchmarkFig2GoldenTemplate(b *testing.B) {
	p := experiments.DefaultParams()
	experiments.ResetCache()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(p)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.ViolatedBits) == 0 {
			b.Fatal("attack not visible in entropy vector")
		}
	}
}

// BenchmarkFig3InjectionDetection regenerates Fig. 3: the injection-rate
// and detection-rate sweep over 15 identifiers.
func BenchmarkFig3InjectionDetection(b *testing.B) {
	p := experiments.DefaultParams()
	experiments.ResetCache()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(p)
		if err != nil {
			b.Fatal(err)
		}
		if rho := res.Spearman(func(pt experiments.Fig3Point) float64 { return pt.InjectionRate }); rho > -0.8 {
			b.Fatalf("Ir shape regressed: Spearman %.2f", rho)
		}
	}
}

// BenchmarkTable1Scenarios regenerates Table I: detection rate and
// inferring accuracy over the six attack rows.
func BenchmarkTable1Scenarios(b *testing.B) {
	p := experiments.DefaultParams()
	experiments.ResetCache()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(p)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 6 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// BenchmarkStability regenerates the Section IV.B entropy-stability
// study across driving behaviours.
func BenchmarkStability(b *testing.B) {
	p := experiments.DefaultParams()
	experiments.ResetCache()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Stability(p)
		if err != nil {
			b.Fatal(err)
		}
		if res.WorstRange > 0.05 {
			b.Fatalf("stability regressed: %v", res.WorstRange)
		}
	}
}

// BenchmarkCompareDetectors regenerates the Section V.E comparison table
// (ours vs Müter [8] vs Song [11]).
func BenchmarkCompareDetectors(b *testing.B) {
	p := experiments.DefaultParams()
	experiments.ResetCache()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Compare(p)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 3 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// --- Section V.E cost arguments ------------------------------------------

// benchTrace builds a shared test trace once.
func benchTrace(b *testing.B) trace.Trace {
	b.Helper()
	sched := sim.NewScheduler()
	bs, err := bus.New(sched, bus.Config{BitRate: bus.DefaultMSCANBitRate})
	if err != nil {
		b.Fatal(err)
	}
	var log trace.Trace
	bs.Tap(func(r trace.Record) { log = append(log, r) })
	vehicle.NewFusionProfile(1).Attach(sched, bs, vehicle.Options{Seed: 1})
	if err := sched.RunUntil(10 * time.Second); err != nil {
		b.Fatal(err)
	}
	return log
}

func trainWindowsFor(b *testing.B, tr trace.Trace) []trace.Trace {
	b.Helper()
	return tr.Windows(time.Second, false)
}

// benchDetectorUpdate measures the per-message Observe cost — the
// lightweight-detection argument of Section V.E.
func benchDetectorUpdate(b *testing.B, d detect.Detector) {
	tr := benchTrace(b)
	if err := d.Train(trainWindowsFor(b, tr)); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(d.StateBytes()), "state-bytes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Observe(tr[i%len(tr)])
	}
}

// BenchmarkDetectorUpdateBitEntropy measures the paper's detector:
// 11 counters updated per message, constant memory.
func BenchmarkDetectorUpdateBitEntropy(b *testing.B) {
	benchDetectorUpdate(b, core.MustNew(core.DefaultConfig()))
}

// BenchmarkDetectorUpdateMuter measures the message-entropy baseline:
// a per-identifier map updated per message.
func BenchmarkDetectorUpdateMuter(b *testing.B) {
	m, err := baseline.NewMuter(baseline.DefaultMuterConfig())
	if err != nil {
		b.Fatal(err)
	}
	benchDetectorUpdate(b, m)
}

// BenchmarkDetectorUpdateSong measures the interval baseline: two
// per-identifier maps consulted per message.
func BenchmarkDetectorUpdateSong(b *testing.B) {
	s, err := baseline.NewSong(baseline.DefaultSongConfig())
	if err != nil {
		b.Fatal(err)
	}
	benchDetectorUpdate(b, s)
}

// --- Ablations (DESIGN.md §5) ---------------------------------------------

// BenchmarkAlphaSweep runs detection at the edges of the paper's α range
// to quantify the sensitivity/specificity trade-off.
func BenchmarkAlphaSweep(b *testing.B) {
	tr := benchTrace(b)
	windows := trainWindowsFor(b, tr)
	profile := vehicle.NewFusionProfile(1)
	attacked := attackedTrace(b, profile, 50)
	for _, alpha := range []float64{3, 5, 10} {
		cfg := core.DefaultConfig()
		cfg.Alpha = alpha
		b.Run(alphaName(alpha), func(b *testing.B) {
			d := core.MustNew(cfg)
			if err := d.Train(windows); err != nil {
				b.Fatal(err)
			}
			var dr float64
			for i := 0; i < b.N; i++ {
				d.Reset()
				var alerts []detect.Alert
				for _, r := range attacked {
					alerts = append(alerts, d.Observe(r)...)
				}
				alerts = append(alerts, d.Flush()...)
				dr = metrics.DetectionRate(attacked, alerts)
			}
			b.ReportMetric(dr, "detection-rate")
		})
	}
}

func alphaName(a float64) string {
	switch a {
	case 3:
		return "alpha=3"
	case 5:
		return "alpha=5"
	default:
		return "alpha=10"
	}
}

func attackedTrace(b *testing.B, profile vehicle.Profile, freq float64) trace.Trace {
	b.Helper()
	sched := sim.NewScheduler()
	bs, err := bus.New(sched, bus.Config{BitRate: bus.DefaultMSCANBitRate})
	if err != nil {
		b.Fatal(err)
	}
	var log trace.Trace
	bs.Tap(func(r trace.Record) { log = append(log, r) })
	profile.Attach(sched, bs, vehicle.Options{Seed: 2})
	if _, err := attack.Launch(sched, bs, nil, attack.Config{
		Scenario:  attack.Single,
		IDs:       []can.ID{profile.IDSet()[40]},
		Frequency: freq,
		Start:     2 * time.Second,
		Duration:  6 * time.Second,
		Seed:      3,
	}); err != nil {
		b.Fatal(err)
	}
	if err := sched.RunUntil(10 * time.Second); err != nil {
		b.Fatal(err)
	}
	return log
}

// BenchmarkRankSweep measures inference with different candidate-set
// sizes (rank = 1 / 5 / 10 / 20).
func BenchmarkRankSweep(b *testing.B) {
	profile := vehicle.NewFusionProfile(1)
	pool := profile.IDSet()
	// A representative alert from a real detection run.
	tr := benchTrace(b)
	d := core.MustNew(core.DefaultConfig())
	if err := d.Train(trainWindowsFor(b, tr)); err != nil {
		b.Fatal(err)
	}
	attacked := attackedTrace(b, profile, 100)
	var alert detect.Alert
	for _, r := range attacked {
		if as := d.Observe(r); len(as) > 0 {
			alert = as[0]
			break
		}
	}
	if alert.Detector == "" {
		b.Fatal("no alert to infer from")
	}
	for _, rank := range []int{1, 5, 10, 20} {
		rank := rank
		b.Run(rankName(rank), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := infer.Rank(alert, pool, can.StandardIDBits, rank); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func rankName(r int) string {
	switch r {
	case 1:
		return "rank=1"
	case 5:
		return "rank=5"
	case 10:
		return "rank=10"
	default:
		return "rank=20"
	}
}

// --- Substrate micro-benchmarks --------------------------------------------

// BenchmarkBitCounterAdd measures the constant-time per-message counter
// update at the heart of the detector. Must report 0 allocs/op.
func BenchmarkBitCounterAdd(b *testing.B) {
	c := entropy.MustBitCounter(11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(can.ID(i) & can.MaxStandardID)
	}
}

// BenchmarkBitCounterRemove measures the sliding-window counterpart;
// Add and Remove share one loop shape and must cost the same. The
// counter is pre-filled untimed so the loop measures Remove alone.
func BenchmarkBitCounterRemove(b *testing.B) {
	c := entropy.MustBitCounter(11)
	for i := 0; i < b.N; i++ {
		c.Add(can.ID(i) & can.MaxStandardID)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Remove(can.ID(i) & can.MaxStandardID)
	}
}

// BenchmarkSchedulerAfter measures steady-state event scheduling: one
// push + pop on the warm value-based event heap. Must report 0
// allocs/op.
func BenchmarkSchedulerAfter(b *testing.B) {
	s := sim.NewScheduler()
	fn := func() {}
	for i := 0; i < 64; i++ {
		s.After(time.Duration(i), fn)
	}
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, fn)
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBinaryEntropy measures the H(p) evaluation.
func BenchmarkBinaryEntropy(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += entropy.Binary(float64(i%1000) / 1000)
	}
	_ = sink
}

// BenchmarkFrameMarshalBits measures full physical-layer frame encoding
// (CRC + stuffing), the reference implementation of bus timing.
func BenchmarkFrameMarshalBits(b *testing.B) {
	f := can.MustFrame(0x2A4, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	for i := 0; i < b.N; i++ {
		_ = f.MarshalBits()
	}
}

// BenchmarkStuffedBitLength measures the allocation-free wire-length
// fast path the bus simulator actually calls per transmission.
func BenchmarkStuffedBitLength(b *testing.B) {
	f := can.MustFrame(0x2A4, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.StuffedBitLength()
	}
}

// BenchmarkBusSimulation measures simulator throughput: simulated bus
// seconds per wall-clock second at full fleet load.
func BenchmarkBusSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sched := sim.NewScheduler()
		bs, err := bus.New(sched, bus.Config{BitRate: bus.DefaultMSCANBitRate})
		if err != nil {
			b.Fatal(err)
		}
		frames := 0
		bs.Tap(func(trace.Record) { frames++ })
		vehicle.NewFusionProfile(1).Attach(sched, bs, vehicle.Options{Seed: 1})
		if err := sched.RunUntil(time.Second); err != nil {
			b.Fatal(err)
		}
		if frames == 0 {
			b.Fatal("no traffic")
		}
	}
}

// BenchmarkReaction regenerates the reaction-latency study (tumbling vs
// sliding detector).
func BenchmarkReaction(b *testing.B) {
	p := experiments.DefaultParams()
	experiments.ResetCache()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Reaction(p)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 4 {
			b.Fatal("rows missing")
		}
	}
}

// --- Streaming engine --------------------------------------------------

// engineBench holds the lazily-built engine benchmark fixture: the
// scenario catalogue's trained template and one recorded attack trace.
var engineBench struct {
	once sync.Once
	tmpl core.Template
	tr   trace.Trace
	err  error
}

func engineBenchFixture(b *testing.B) (core.Template, trace.Trace) {
	engineBench.once.Do(func() {
		specs := scenario.Matrix(1)
		cfg := core.DefaultConfig()
		engineBench.tmpl, engineBench.err = scenario.Train(specs, "fusion", cfg)
		if engineBench.err != nil {
			return
		}
		spec, ok := scenario.Find(specs, "fusion/idle/SI-100")
		if !ok {
			engineBench.err = fmt.Errorf("scenario missing")
			return
		}
		engineBench.tr, engineBench.err = spec.Run()
	})
	if engineBench.err != nil {
		b.Fatal(engineBench.err)
	}
	return engineBench.tmpl, engineBench.tr
}

// BenchmarkEngineThroughput measures the streaming engine's sustained
// detection rate in frames per second over a recorded attack scenario,
// per shard count. The "frames/s" metric is the headline number; ns/op
// covers one full pass over the trace including pipeline setup and
// teardown.
func BenchmarkEngineThroughput(b *testing.B) {
	tmpl, tr := engineBenchFixture(b)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			cfg := engine.DefaultConfig()
			cfg.Shards = shards
			cfg.Core.Alpha = 4
			eng, err := engine.NewTrained(cfg, tmpl)
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				alerts, st, err := eng.Detect(ctx, tr)
				if err != nil {
					b.Fatal(err)
				}
				if len(alerts) == 0 || st.Frames != uint64(len(tr)) {
					b.Fatal("engine dropped frames or alerts")
				}
			}
			b.ReportMetric(float64(b.N)*float64(len(tr))/b.Elapsed().Seconds(), "frames/s")
		})
	}
}

// BenchmarkEnginePrevention measures what the prevention stage costs:
// the same recorded attack trace through the same engine, with the
// filter stage off and with the full gateway → responder → blocklist
// loop on (including the per-window dispatcher barrier). The "frames/s"
// metrics of the two sub-benchmarks are directly comparable;
// allocs/op is reported so the smoke pass records the per-run
// allocation budget of each path (the per-frame guard proper is
// TestEnginePreventionSteadyStateAllocs).
func BenchmarkEnginePrevention(b *testing.B) {
	tmpl, tr := engineBenchFixture(b)
	pool := vehicle.NewFusionProfile(scenario.Matrix(1)[0].ProfileSeed).IDSet()
	run := func(b *testing.B, prevent bool) {
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := engine.DefaultConfig()
			cfg.Shards = 4
			cfg.Core.Alpha = 4
			if prevent {
				gw, err := gateway.New(gateway.DefaultConfig(nil))
				if err != nil {
					b.Fatal(err)
				}
				resp, err := response.New(gw, response.DefaultConfig(pool))
				if err != nil {
					b.Fatal(err)
				}
				cfg.Gateway, cfg.Responder = gw, resp
			}
			eng, err := engine.NewTrained(cfg, tmpl)
			if err != nil {
				b.Fatal(err)
			}
			alerts, st, err := eng.Detect(ctx, tr)
			if err != nil {
				b.Fatal(err)
			}
			if len(alerts) == 0 || st.Frames != uint64(len(tr)) {
				b.Fatal("engine dropped frames or alerts")
			}
			if prevent && st.DroppedInjected == 0 {
				b.Fatal("prevention stopped nothing")
			}
		}
		b.ReportMetric(float64(b.N)*float64(len(tr))/b.Elapsed().Seconds(), "frames/s")
	}
	b.Run("filter=off", func(b *testing.B) { run(b, false) })
	b.Run("filter=on", func(b *testing.B) { run(b, true) })
}

// BenchmarkScenarioMatrix measures generating one catalogue scenario
// end to end (simulation plus trace capture).
func BenchmarkScenarioMatrix(b *testing.B) {
	specs := scenario.Matrix(1)
	spec, ok := scenario.Find(specs, "fusion/cruise/MI2-50")
	if !ok {
		b.Fatal("scenario missing")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := spec.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(tr) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkRandSeeding pins the satellite optimization of PR 2: sim's
// bit-identical math/rand replica seeds ~3x faster than the stdlib
// source it replaces (223 seeded sources per vehicle attach).
func BenchmarkRandSeeding(b *testing.B) {
	b.Run("sim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = sim.NewRand(int64(i))
		}
	})
	b.Run("stdlib", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = rand.New(rand.NewSource(int64(i)))
		}
	})
}

// BenchmarkServeIngest measures the serving daemon end to end: each
// iteration starts a server from a trained snapshot, posts the recorded
// attack scenario as one binary HTTP body through the handler, drains
// (final windows flush, like the offline detector), and tears down —
// the full ingest→detect→flush cycle a deployment pays per uploaded
// capture. The "frames/s" metric is the headline number.
func BenchmarkServeIngest(b *testing.B) {
	tmpl, tr := engineBenchFixture(b)
	cfg := core.DefaultConfig()
	cfg.Alpha = 4
	snap, err := store.New(cfg, tmpl, nil)
	if err != nil {
		b.Fatal(err)
	}
	var body bytes.Buffer
	if err := trace.WriteBinary(&body, tr); err != nil {
		b.Fatal(err)
	}
	payload := body.Bytes()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv, err := server.New(server.Config{Snapshot: snap, Shards: 4})
		if err != nil {
			b.Fatal(err)
		}
		if err := srv.Start(ctx); err != nil {
			b.Fatal(err)
		}
		req := httptest.NewRequest("POST", "/ingest/ms-can?format=binary", bytes.NewReader(payload))
		w := httptest.NewRecorder()
		srv.Handler().ServeHTTP(w, req)
		if w.Code != 200 {
			b.Fatalf("ingest status %d: %s", w.Code, w.Body.String())
		}
		if err := srv.Drain(); err != nil {
			b.Fatal(err)
		}
		if srv.AlertsTotal() == 0 {
			b.Fatal("served run raised no alerts")
		}
	}
	b.ReportMetric(float64(b.N)*float64(len(tr))/b.Elapsed().Seconds(), "frames/s")
}
