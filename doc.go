// Package canids is a reproduction of "An Entropy Analysis based
// Intrusion Detection System for Controller Area Network in Vehicles"
// (Wang, Lu, Qu — IEEE SOCC 2018): a bit-level-entropy intrusion
// detection system for CAN, together with the complete substrate needed
// to evaluate it — a bit-accurate CAN frame codec, a discrete-event bus
// simulator with bitwise arbitration, a synthetic Ford-Fusion-like
// vehicle traffic profile, the paper's four injection-attack scenarios,
// malicious-ID inference, and the two comparison baselines (Müter
// message entropy and Song interval analysis).
//
// Layout:
//
//	internal/core        the paper's bit-entropy IDS (template, detector)
//	internal/infer       malicious-ID inference (rank selection)
//	internal/can         CAN 2.0 frames, CRC-15, bit stuffing, codecs
//	internal/bus         discrete-event CAN bus simulator
//	internal/vehicle     Fusion-like ECU fleet and driving scenarios
//	internal/attack      FI / SI / MI-k / WI injection campaigns
//	internal/baseline    Müter [8] and Song [11] comparison detectors
//	internal/entropy     bit-slice counters and entropy math
//	internal/detect      shared detector interface and alert types
//	internal/gateway     bus gateway filter: whitelist, rate limits, blocklist
//	internal/response    alerts → inference → gateway blocks (prevention)
//	internal/metrics     Ir, Dr, hit rate, confusion counts
//	internal/trace       candump / CSV / binary log formats + streaming decoders, jitter-horizon reordering
//	internal/dataset     real-world CAN capture dialects (HCRL, survival, OTIDS): sniffing, streaming importers, writers
//	internal/sim         deterministic discrete-event scheduler, fast seeded RNG
//	internal/engine      sharded streaming detection + prevention engine, multi-bus supervisor
//	internal/engine/scenario  named scenario matrix (profiles × drives × attacks)
//	internal/model       immutable epoch-numbered model value (config + template + policies), the single swap unit
//	internal/store       versioned, checksummed model snapshots (atomic save, strict load, v1→v2 migration)
//	internal/server      long-running HTTP serving daemon (ingest, stats, hot reload, adaptation, checkpoints)
//	internal/adapt       online adaptation: clean-window learning, boundary-pinned promotions
//	internal/fault       deterministic fault injection (panic/error/stall at named seams)
//	internal/journal     append-only CRC-framed binary journals (rotation, torn-tail recovery)
//	internal/experiments one runner per paper table and figure
//	cmd/...              cangen, canattack, canids, experiments
//	examples/...         quickstart, livebus, offline, sweep, streaming, prevention, serving, adaptation
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation; see EXPERIMENTS.md for the measured results.
//
// # Streaming engine
//
// internal/engine turns the one-shot detector into a serving subsystem:
// a Source abstraction feeds records from trace files (all three log
// formats decode incrementally), live channels, or generators; a
// dispatcher shards the per-frame counting across N worker pipelines by
// CAN ID over bounded channels; per-shard bit counts merge losslessly
// (they are integers) into whole windows scored through the exact
// sequential code path (core.Detector.ScoreWindow); and an ordered merge
// with per-stream watermarks interleaves the bit-entropy stream with
// optional Müter/Song baseline pipelines into one deterministic
// (WindowEnd, stream) alert order. The engine's output is bit-identical
// to a sequential core.Detector at any shard count — pinned by
// TestEngineMatchesSequential for shards 1, 2 and 8 — and the whole
// suite holds under go test -race and -shuffle=on (ci.sh runs both).
//
// internal/engine/scenario is the workload matrix behind it: vehicle
// profiles × driving behaviours × attack campaigns composed into named,
// seeded scenarios ("fusion/idle/SI-100") that replay bit-for-bit.
// `canids -list-scenarios` prints the catalogue, `canids -watch
// -scenario <name> -shards N [-baselines]` streams one live with
// periodic metrics, and examples/streaming demonstrates the
// sharding-is-invisible contract end to end.
//
// # Prevention
//
// The engine also closes the paper's prevention loop ("the malicious
// messages containing those IDs would be discarded or blocked"): an
// internal/gateway.Gateway runs as a pre-filter on the dispatch path
// (whitelist, learned rate limits, dynamic blocklist — all
// goroutine-safe), the merged alert stream feeds an
// internal/response.Responder whose inference quarantines the top
// suspects, and the dispatcher synchronizes at window boundaries so
// blocks land at a deterministic stream position. The result — alert
// stream, dropped-frame set, response history — is bit-identical to a
// sequential classify→observe→respond loop at any shard count
// (TestEnginePreventionMatchesSequential, shards 1/2/8 under -race).
// Records batch per channel send (Config.Batch) to amortize channel
// ops, and engine.Supervisor serves multi-bus captures with one engine
// (and per-bus policy state) per channel. `canids -watch -prevent
// [-whitelist] [-multibus]` scores prevention against scenario ground
// truth — attack frames blocked vs legitimate collateral drops — and
// examples/prevention shows the loop stopping a live injection
// mid-stream.
//
// # Serving
//
// The paper's train-offline/detect-online split becomes a deployment
// lifecycle: train once on attack-free driving, persist the artifacts,
// serve detection forever without retraining.
//
// internal/store is the persistence layer: one store.Snapshot carries
// the detector configuration, the golden template, the legal identifier
// pool, gateway policy (whitelist + learned rate budgets) and response
// policy, framed as magic + version + payload length + SHA-256 over a
// canonical-JSON payload. Saves are atomic (write temp, sync, rename);
// loads are strict — truncation, version skew, checksum mismatch,
// unknown fields and semantically invalid artifacts all error, never
// panic (FuzzStoreDecode). A loaded snapshot drives a detector to a
// bit-identical alert stream versus the never-serialized original
// (TestSnapshotRoundTripAlerts), because JSON round-trips float64
// exactly. `canids -train -save` / `-watch -scenario -save` produce
// snapshots; `-detect/-watch/-serve -load` consume them, with gateway
// budgets injected instead of relearned (gateway.Config.Budgets).
//
// internal/server is the daemon behind `canids -serve`: an HTTP facade
// over engine.Supervisor with per-bus ingest (POST /ingest/{channel},
// streaming bodies in all three trace formats), read endpoints
// (/alerts, /stats, /healthz) and two admin verbs. POST /admin/reload
// hot-swaps a snapshot: every live engine queues the new model.Model
// (engine.Swap) that the dispatcher installs at its next window
// boundary — reusing the prevention window barrier position — so each
// window is scored wholly under one template, no frames are dropped,
// and the resulting alert stream is bit-identical to a sequential
// detector that switches templates at the same boundary, at any shard
// count (TestEngineHotSwapMatchesSequential, shards 1/2/8 under
// -race).
// Gateway budgets/whitelist swap on the dispatch side of the boundary
// and responder policy rides the merge stream, so the whole policy set
// changes at one deterministic stream position. POST /admin/shutdown
// drains: ingest stops, final partial windows flush like the offline
// detector's Flush, and the response carries the final counts — the
// invariant ci.sh's serve smoke leg scripts against (served alert count
// == offline -detect run on the same capture and snapshot).
//
// # Online adaptation
//
// A daemon that serves for months meets drift the training capture
// never saw — new ECUs after a firmware update, seasonal bus load,
// changed duty cycles. internal/adapt closes that loop without an
// operator: an Adapter rides the engine's adaptation hook
// (engine.Config.Adapt), classifies every closed detection window —
// clean means alert-free, gateway-pass, dense enough to score — and
// learns only from the clean ones: per-identifier rate peaks feed a
// bounded ring (gateway.RateLearner, the incremental form of the
// LearnRates math, pinned equal by TestRateLearnerMatchesBatch), and
// the template's per-bit means are EWMA-refreshed while its trained
// thresholds stay fixed. On a clean-window cadence the adapter promotes
// the re-learned budgets and refreshed template through the same
// engine.Swap window-boundary mechanism a hot reload uses, so the
// adapted run stays deterministic: the alert stream is bit-identical to
// a sequential classify→observe→adapt loop swapping the same models at
// the same boundaries, at shards 1/2/8 under -race
// (TestEngineAdaptMatchesSequential).
//
// `canids -serve -adapt` arms one adapter per bus; /admin/adapt serves
// the counters and the pause/resume/force controls, and /stats carries
// the per-bus adaptation section. With -checkpoint, every promotion
// (and the final drain) persists the adapted model as a version-2
// snapshot — the first snapshot schema evolution: format 2 adds
// adaptation provenance (windows observed, promotions, last promotion
// boundary, drift), and store.Decode migrates format-1 files in code so
// every pre-existing snapshot still loads bit-identically
// (TestSnapshotV1MigratesToV2). A restarted daemon -loads the
// checkpoint and the learned budgets survive, which ci.sh's adapt smoke
// leg scripts end to end. The admin surface hardens accordingly:
// Config.AdminToken puts every /admin/* verb behind a bearer token
// (401 otherwise), and the daemon terminates TLS in process when
// handed a key pair (`-tls-cert`/`-tls-key`, TLS 1.2+, serve-only
// flags validated as a pair) — carrying the token over an untrusted
// transport no longer requires an external terminator, though a
// reverse proxy or mesh in front still works for plain-HTTP
// deployments. Live buses can also be retuned without a restart:
// POST /admin/adapt?action=configure&every=N&min_windows=M[&channel=b]
// adjusts a bus's promotion cadence and warm-up on the fly, applied
// between windows on the dispatch goroutine so determinism holds.
//
// # Fault tolerance
//
// A daemon that protects several buses must not let one bus's failure
// take down the rest. engine.Supervisor runs every bus engine under
// panic recovery: a panicking or erroring bus is torn down and
// restarted from its last checkpoint (or the base snapshot) with capped
// exponential backoff, while the other buses keep streaming — their
// alert output stays bit-identical to an undisturbed run, pinned by the
// chaos suite at shards 1/2/8 under -race. Frames that arrive while a
// bus is down are not silently dropped: the supervisor counts every one
// in Stats.Lost, so accepted == served + lost reconciles exactly after
// a drain. A bus that exhausts its restart budget is marked dead —
// /healthz answers 503 "degraded" and the daemon keeps serving the
// survivors instead of crashing.
//
// Checkpoint writes rotate the previous generation to a .prev file and
// retry failures with capped backoff; a restart that finds its
// checkpoint corrupt falls back newest-valid-then-base, and every
// degradation on that ladder is surfaced in /stats and /healthz rather
// than logged and lost. The ingest surface hardens the same way:
// per-read deadlines (408), a configurable body cap (413), and a
// bounded feed backlog that sheds load with 429 + Retry-After when the
// engines cannot keep up, instead of letting one slow client wedge the
// daemon.
//
// All of it is driven by internal/fault, a deterministic fault-injection
// harness: an Injector armed from a compact spec ("engine.frame[ms-can]:
// panic@500;checkpoint.save:error@1") fires panics, errors, or stalls at
// named seams threaded through the engine and server — the Nth frame of
// a bus, a template swap install, a checkpoint write. Faults are exact,
// not probabilistic, so every chaos test replays bit-for-bit. `canids
// -serve -faults <spec>` arms the same plan against the real daemon,
// which is how ci.sh's chaos smoke leg scripts the whole story: an
// injected checkpoint write failure retried to disk, two mid-ingest
// engine panics absorbed by checkpoint restarts, /healthz dipping to
// degraded and recovering, and final counters that reconcile to the
// frame.
//
// # Observability and incident replay
//
// A long-running daemon is operated, not watched: GET /metrics exports
// every counter the server already keeps — per-bus frames, drops,
// windows, alerts, lost frames, restarts, one-hot health state, and the
// adaptation and checkpoint-retry totals — in the Prometheus text
// exposition format, hand-rolled (the repo takes no dependencies) with
// sorted buses and shortest-float samples so identical state scrapes to
// identical bytes. The counters reconcile exactly with /stats:
// accepted == frames + lost per bus after a drain, pinned by
// TestMetricsReconcileAfterChaos against a fault-injected run.
//
// Alerts additionally persist to disk: internal/journal is an
// append-only, length-prefixed, CRC-32-checked binary journal with size
// rotation and torn-tail recovery (a crash mid-write truncates back to
// the last intact entry on reopen, never discards one), and
// Config.JournalDir (`canids -serve -journal <dir>`) appends every
// alert to one journal per bus beside the in-memory ring. The /alerts
// ring itself is a true circular buffer — steady state retains alerts
// with zero allocations (TestAlertRingSteadyStateAllocs).
//
// `-serve -record <dir>` turns an incident into a test case: a tap on
// the supervisor's demux seam captures the exact post-demux record
// stream — per-bus content, order, and batch boundaries — plus the
// served snapshot (checksummed) and every determinism-relevant knob in
// a manifest, with the alert journal defaulted into the capture.
// `canids -replay <dir>` rebuilds the same pipeline from the manifest,
// pushes the captured stream back through the same server path, and
// verifies the replayed alert journal equals the recorded one byte for
// byte — the engine's per-bus determinism guarantee made operational
// (TestRecordReplayDeterminism at shards 1/2/8 under -race, and ci.sh's
// observability smoke leg against the real daemon). The contract covers
// clean-drain runs; a crash-restart loses frames the capture still
// carries, so those replays run but may legitimately diverge.
//
// # Latency & profiling
//
// Counters say how much; latency histograms say how long. internal/hist
// is a dependency-free, fixed-bucket log-linear histogram — base-2 with
// two sub-buckets per octave, first bound 4.096µs, last finite bound
// ~68.7s — whose Observe is one atomic add per bucket plus one for the
// sum: allocation-free, so it rides the engine hot path without
// disturbing the <0.25 allocs/frame guards, and a nil *Histogram is a
// valid no-op receiver, so timing is a nil check when disabled. Bucket
// bounds render from strings precomputed at init, making the Prometheus
// exposition byte-stable for equal state (TestMetricsHistogramByteStable
// scrapes twice and diffs).
//
// /metrics exports six histogram families, each with a counter it must
// agree with at quiescence: canids_ingest_request_seconds (one
// observation per HTTP ingest call) and canids_ingest_decode_seconds
// per wire format (request time minus feed backpressure);
// canids_pipeline_latency_seconds{bus} — a wall stamp rides the
// engine's flush token from the dispatcher's broadcast to the merged
// window being scored, one observation per closed window, so _count
// equals canids_bus_windows_total; canids_barrier_stall_seconds{bus},
// the dispatcher's wait on the per-window barrier;
// canids_detect_latency_seconds{bus} — end-to-end detection latency
// from record ingest to alert emit, resolved through a bounded
// per-bus watermark ring pairing stream time with arrival wall time at
// the demux tap, one observation per alert, so _count equals
// canids_bus_alerts_total (fleet mode included; the per-engine pipeline
// histograms ride per-bus engine builds, which fleet lanes bypass); and
// canids_checkpoint_save_seconds. The timing is side-band only: stamps
// ride existing channel messages and never branch the pipeline, so the
// deterministic alert stream and record/replay bit-identity are
// untouched (the shards-1/2/8 -race parity suites pin this).
//
// The daemon's own voice is structured: log/slog on stderr (stdout
// stays reserved for the mode transcripts scripts parse), with
// -log-level debug|info|warn|error and -log-format text|json, and
// per-bus/epoch attrs on engine restarts, model installs, checkpoint
// saves and degradations. For the questions counters cannot answer,
// the full net/http/pprof surface is mounted at /admin/pprof/ behind
// the same bearer token as every other admin route (unauthenticated
// requests get 401 before any profiling runs), alongside Go runtime
// gauges (canids_goroutines, canids_heap_alloc_bytes, ...) on
// /metrics. GET /admin/diag captures the whole observable surface in
// one shot — stats, metrics, health, recent alerts, degradation notes,
// redacted effective config, build info, full goroutine dump — as a
// tar.gz incident bundle, so "grab diagnostics before restarting" is
// one curl (TestDiagBundle, and ci.sh fetches one through auth).
//
// # Model & fleet serving
//
// Everything a detector serves with — core config, golden template,
// legal identifier pool, gateway policy (whitelist + rate budgets),
// response policy — is one immutable internal/model.Model value,
// stamped with a monotonic epoch. model.New validates the whole set
// once at construction; derivations (WithTemplate, WithGatewayBudgets,
// WithEpoch) share every unchanged part structurally, so deriving an
// adapted model from a 64-bit-template base copies kilobytes, not the
// model. All four ways a model reaches an engine — initial build from
// a snapshot, /admin/reload, an adapt promotion, a checkpoint restore
// — construct the same type and funnel through the same install:
// engine.Swap(*model.Model) queues it, and the dispatcher installs it
// whole at the next window boundary (template, gateway policy,
// responder policy in one step), so every window is scored under
// exactly one epoch. The serving epoch is observable end to end:
// /stats carries it, /metrics exports canids_serving_epoch and
// per-bus canids_model_epoch{bus} gauges, and ci.sh's fleet smoke leg
// asserts a single reload converges every lane to one epoch.
//
// Because the model is immutable, the hot paths need no policy locks:
// gateway.Gateway and response.Responder read their policy through an
// atomic.Pointer snapshot (gateway.Policy is itself immutable), and
// only the genuinely mutable per-engine state — quarantine deadlines,
// rate-window counters — keeps a mutex. Classify and HandleAlert are
// lock-free on the policy read, and the steady-state allocation guard
// (<0.25 allocs/frame) still holds.
//
// The shared model is what makes fleet serving cheap. `canids -serve
// -fleet K` multiplexes every vehicle (channel) onto K host engines by
// consistent hashing (FNV-64a ring, 16 virtual nodes per engine), so a
// vehicle's frames always reach the same engine and per-vehicle
// detector state stays exact. Lanes spin up lazily on a vehicle's
// first frame and, with -fleet-idle, tear down after idle stream time
// — a returning vehicle's lane skips ahead to its next frame exactly
// like a dedicated engine crossing the same gap, so multiplexed alert
// streams are bit-identical to one-engine-per-vehicle at shards 1/2/8
// under -race (TestFleetMatchesDedicatedEngines,
// TestFleetPreventionMatchesDedicated, TestFleetIdleTeardownLifecycle).
// Per-vehicle ingest quotas (-quota-frames per -quota-window) shed
// floods deterministically at the demux — counted in Stats.Shed and
// canids_bus_shed_total, answered 429 + Retry-After at HTTP once the
// gate latches — so one chatty vehicle cannot starve the fleet. The
// marginal cost per vehicle drops from ~280 kB (a full engine + model
// copy each) to ~15 kB (a lane over shared engines and one shared
// model): a 100-vehicle serve runs in ~14 MB RSS where the
// one-engine-per-bus shape needs ~40 MB — the measured transcript is
// in EXPERIMENTS.md.
//
// # Dataset evaluation
//
// Every number above is measured against the in-repo simulator;
// internal/dataset confronts the detector with real traffic dialects.
// Streaming importers normalize the public CAN capture formats — the
// HCRL car-hacking CSV family (one column per payload byte, R/T ground
// truth), the survival-analysis CSV variant (contiguous hex payload),
// and OTIDS-style candump-like logs (keyword-tagged, unlabeled) — into
// trace.Record streams. Each importer is a trace.Decoder, hence an
// engine.Source: files are never buffered whole. Dialect quirks are
// handled deterministically: absolute epoch timestamps are rebased to
// trace-relative time; out-of-order rows are sorted within a jitter
// horizon (trace.ReorderDecoder — opt-in, the plain decoders keep their
// strict file-order behavior); DLC/payload mismatches are repaired
// toward the bytes actually present; attack labels in all their
// spellings (R/T, 0/1, Normal/Attack) fold into Record.Injected. The
// accounting is exact: Stats guarantees imported + skipped == rows,
// with repaired/late sub-counts (FuzzDatasetDecode pins the invariants
// on arbitrary input).
//
// `canids -eval <dir|file> [-eval-split 0.3] [-eval-dialect d]` is the
// evaluation harness on top: it sniffs each capture's dialect (majority
// vote over the head; -list-dialects enumerates the grammars), trains
// the core config + template + gateway budgets on the attack-free part
// — a labeled clean capture trains wholly, otherwise each file's clean
// prefix capped at the split fraction — streams the remainder through
// the sharded engine, and prints a per-capture detection/FP/latency
// table next to Table1 (shared renderer: experiments.RenderTable). The
// whole transcript is a pure function of the capture bytes and flags:
// bit-identical at shards 1, 2 and 8 (TestEvalShardDeterminism under
// -race, plus ci.sh's dataset-eval smoke leg, which also reconciles the
// accounting lines exactly). The committed fixtures under
// internal/dataset/testdata are generated by `cangen -dialect
// hcrl|survival|otids [-attack SI ...] [-epoch N]` and pinned
// byte-for-byte by TestDialectFixturesPinned, so the eval path runs
// hermetically with no downloads.
//
// # Performance
//
// The paper's core claim is that bit-level entropy detection is
// lightweight: constant per-message cost, constant memory. The
// implementation enforces that claim with zero-allocation hot paths,
// guarded by testing.AllocsPerRun regression tests:
//
//   - can.Frame.BitLength/StuffedBitLength computes the exact stuffed
//     on-wire length arithmetically (packed bit words, table-driven
//     CRC-15, run-length stuff counting) without materializing the wire
//     bit slice; the bus calls it once per transmission and caches it
//     per TX request;
//   - sim.Scheduler stores events by value in a 4-ary heap, so At/After/
//     Every schedule without allocating once the queue is warm;
//   - entropy.BitCounter.Add/Remove share one LSB-first loop over fixed
//     counters, and MeasureInto fills caller-provided entropy and
//     probability vectors in one fused pass;
//   - entropy.Binary serves mid-range probabilities from a quantized
//     lookup table (within 1e-9 of the exact two-log form, exact at the
//     nodes; BinaryExact is the reference and the near-edge fallback);
//   - core.Detector.Observe scores windows into reusable scratch
//     vectors and only builds per-bit alert detail when a threshold is
//     actually violated — a clean record stream is 0 allocs/op;
//   - sim.NewRand seeds a bit-exact replica of math/rand's generator
//     ~3x faster than the stdlib path (8-lane Lehmer chain with a
//     Mersenne fold; rngCooked recovered from public outputs at init) —
//     the simulator seeds one source per scheduled message, 223 per
//     vehicle attach;
//   - the engine's per-frame shard path (receive, BitCounter.Add,
//     atomic tick) allocates nothing; TestEngineSteadyStateAllocs
//     bounds a whole run at <0.25 allocs/frame;
//   - serve ingest batches decoded records into recycled
//     []trace.Record slabs (engine.RecordPool) through the feed channel
//     and the supervisor demux, mirroring the engine's internal
//     Config.Batch — one channel operation per batch instead of per
//     record lifted BenchmarkServeIngest from ~1.9M to ~2.5M frames/s
//     (BENCH_4 → BENCH_5).
//
// The experiment pipeline (internal/experiments) memoizes the clean
// training traffic and golden template per parameter set, caches
// completed simulation runs (every run is a pure function of its
// seeds), and fans independent sweep points across a bounded worker
// pool with pre-derived seeds — results are bit-identical to a
// sequential pass at the same seed. ./ci.sh runs the tier-1 gate plus a
// benchmark smoke pass and records the numbers in BENCH_*.json; see
// EXPERIMENTS.md for how to compare runs with benchstat.
package canids
