// Package canids is a reproduction of "An Entropy Analysis based
// Intrusion Detection System for Controller Area Network in Vehicles"
// (Wang, Lu, Qu — IEEE SOCC 2018): a bit-level-entropy intrusion
// detection system for CAN, together with the complete substrate needed
// to evaluate it — a bit-accurate CAN frame codec, a discrete-event bus
// simulator with bitwise arbitration, a synthetic Ford-Fusion-like
// vehicle traffic profile, the paper's four injection-attack scenarios,
// malicious-ID inference, and the two comparison baselines (Müter
// message entropy and Song interval analysis).
//
// Layout:
//
//	internal/core        the paper's bit-entropy IDS (template, detector)
//	internal/infer       malicious-ID inference (rank selection)
//	internal/can         CAN 2.0 frames, CRC-15, bit stuffing, codecs
//	internal/bus         discrete-event CAN bus simulator
//	internal/vehicle     Fusion-like ECU fleet and driving scenarios
//	internal/attack      FI / SI / MI-k / WI injection campaigns
//	internal/baseline    Müter [8] and Song [11] comparison detectors
//	internal/entropy     bit-slice counters and entropy math
//	internal/detect      shared detector interface and alert types
//	internal/metrics     Ir, Dr, hit rate, confusion counts
//	internal/trace       candump / CSV / binary log formats
//	internal/sim         deterministic discrete-event scheduler
//	internal/experiments one runner per paper table and figure
//	cmd/...              cangen, canattack, canids, experiments
//	examples/...         quickstart, livebus, offline, sweep
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation; see EXPERIMENTS.md for the measured results.
package canids
