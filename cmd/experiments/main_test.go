package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "stability"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "Entropy stability") {
		t.Errorf("missing stability table:\n%s", text)
	}
	if strings.Contains(text, "Table I") {
		t.Error("only the requested experiment should run")
	}
}

func TestRunFig2WithOverrides(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "fig2", "-seed", "2", "-alpha", "5"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "seed=2, alpha=5") {
		t.Errorf("overrides not applied:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "fig9"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}, &bytes.Buffer{}); err == nil {
		t.Error("bad flag should fail")
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	var out bytes.Buffer
	if err := run([]string{"-run", "all"}, &out); err != nil {
		t.Fatalf("run all: %v", err)
	}
	text := out.String()
	for _, want := range []string{"Entropy stability", "Fig. 2", "Fig. 3", "Table I", "comparison with", "Reaction time"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in -run all output", want)
		}
	}
}
