// Command experiments regenerates every table and figure of the paper's
// evaluation on the simulated substrate.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig2
//	experiments -run fig3
//	experiments -run table1
//	experiments -run stability
//	experiments -run compare
//
// Results are printed as aligned text tables; Table I includes the
// paper's reported numbers side by side.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"canids/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		which = fs.String("run", "all", "experiment: all|fig2|fig3|table1|stability|compare")
		seed  = fs.Int64("seed", 0, "override the default seed")
		alpha = fs.Float64("alpha", 0, "override the threshold multiplier α")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := experiments.DefaultParams()
	if *seed != 0 {
		p.Seed = *seed
	}
	if *alpha != 0 {
		p.Alpha = *alpha
	}

	type experiment struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	table := func(f func() (interface{ Table() string }, error)) func() (fmt.Stringer, error) {
		return func() (fmt.Stringer, error) {
			r, err := f()
			if err != nil {
				return nil, err
			}
			return stringer{r.Table()}, nil
		}
	}
	all := []experiment{
		{"stability", table(func() (interface{ Table() string }, error) { return experiments.Stability(p) })},
		{"fig2", table(func() (interface{ Table() string }, error) { return experiments.Fig2(p) })},
		{"fig3", table(func() (interface{ Table() string }, error) { return experiments.Fig3(p) })},
		{"table1", table(func() (interface{ Table() string }, error) { return experiments.Table1(p) })},
		{"compare", table(func() (interface{ Table() string }, error) { return experiments.Compare(p) })},
		{"reaction", table(func() (interface{ Table() string }, error) { return experiments.Reaction(p) })},
	}

	ran := 0
	for _, e := range all {
		if *which != "all" && *which != e.name {
			continue
		}
		ran++
		start := time.Now()
		out, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Fprintln(stdout, out)
		fmt.Fprintf(stdout, "[%s completed in %v, seed=%d, alpha=%v]\n\n",
			e.name, time.Since(start).Round(time.Millisecond), p.Seed, p.Alpha)
	}
	if ran == 0 {
		return fmt.Errorf("unknown experiment %q", *which)
	}
	return nil
}

type stringer struct{ s string }

func (s stringer) String() string { return s.s }
