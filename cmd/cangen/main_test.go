package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"canids/internal/trace"
)

func TestRunCandumpToStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-duration", "2s", "-seed", "3"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	tr, err := trace.ReadCandump(&out)
	if err != nil {
		t.Fatalf("output is not candump: %v", err)
	}
	if len(tr) < 500 {
		t.Errorf("only %d frames in 2s", len(tr))
	}
}

func TestRunCSVFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	if err := run([]string{"-duration", "1s", "-format", "csv", "-o", path}, &bytes.Buffer{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadCSV(f)
	if err != nil {
		t.Fatalf("output is not csv: %v", err)
	}
	if tr.CountInjected() != 0 {
		t.Error("clean capture must not contain injected frames")
	}
	for _, r := range tr {
		if r.Source == "" {
			t.Fatal("csv should carry source provenance")
		}
	}
}

func TestRunBinaryFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.bin")
	if err := run([]string{"-duration", "1s", "-format", "binary", "-o", path}, &bytes.Buffer{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := trace.ReadBinary(f); err != nil {
		t.Fatalf("output is not binary trace: %v", err)
	}
}

func TestRunScenarioSelection(t *testing.T) {
	for _, s := range []string{"idle", "audio", "lights", "cruise"} {
		var out bytes.Buffer
		if err := run([]string{"-duration", "500ms", "-scenario", s}, &out); err != nil {
			t.Errorf("scenario %s: %v", s, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-scenario", "flying"},
		{"-format", "xml"},
		{"-bitrate", "0"},
		{"-badflag"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestParseScenario(t *testing.T) {
	if _, err := parseScenario("audio"); err != nil {
		t.Error(err)
	}
	if _, err := parseScenario("AUDIO"); err == nil {
		t.Error("scenario names are lowercase")
	}
}

func TestRunDeterministicBySeed(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-duration", "1s", "-seed", "9"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-duration", "1s", "-seed", "9"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.EqualFold(a.String(), b.String()) {
		t.Error("same seed should produce identical logs")
	}
}

// fixtureSpecs are the exact invocations that produced the committed
// dataset fixtures. TestDialectFixturesPinned regenerates each one and
// byte-compares it against the checked-in file, so any drift in the
// simulator, the attack streams or the dialect writers that would
// silently re-date the fixtures fails loudly instead.
var fixtureSpecs = []struct {
	file string
	args []string
}{
	{"hcrl.csv", []string{"-dialect", "hcrl", "-duration", "10s", "-seed", "1", "-attack", "SI", "-attack-freq", "100", "-attack-start", "6s", "-epoch", "1478198371"}},
	{"survival.csv", []string{"-dialect", "survival", "-duration", "10s", "-seed", "2", "-attack", "MI", "-attack-freq", "50", "-attack-start", "6s", "-epoch", "1513468793"}},
	{"otids.log", []string{"-dialect", "otids", "-duration", "10s", "-seed", "3", "-attack", "FI", "-attack-freq", "150", "-attack-start", "6s", "-epoch", "1479121434"}},
}

func TestDialectFixturesPinned(t *testing.T) {
	for _, spec := range fixtureSpecs {
		t.Run(spec.file, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("..", "..", "internal", "dataset", "testdata", spec.file))
			if err != nil {
				t.Fatalf("read committed fixture: %v", err)
			}
			var out bytes.Buffer
			if err := run(spec.args, &out); err != nil {
				t.Fatalf("run(%v): %v", spec.args, err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Fatalf("regenerated %s differs from the committed fixture (%d vs %d bytes); re-run cangen with the documented args if the change is intended", spec.file, out.Len(), len(want))
			}
		})
	}
}

func TestDialectFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-dialect", "pcap"},                   // unknown dialect
		{"-dialect", "hcrl", "-format", "csv"}, // mutually exclusive
		{"-epoch", "100"},                      // -epoch without -dialect
		{"-dialect", "hcrl", "-epoch", "-5"},   // negative epoch
		{"-attack-freq", "50"},                 // attack knob without -attack
		{"-attack", "XX", "-dialect", "hcrl"},  // unknown attack
		{"-attack-start", "1s"},                // attack knob without -attack
	}
	for _, args := range cases {
		if err := run(append([]string{"-duration", "100ms"}, args...), &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
