// Command cangen generates synthetic Fusion-like CAN traffic logs by
// running the simulated vehicle network for a configurable duration.
//
// Usage:
//
//	cangen -duration 30s -scenario idle -seed 1 -format candump -o traffic.log
//
// Formats: candump (text, no ground truth), csv (with source/injected
// ground truth), binary (compact stream).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"canids/internal/bus"
	"canids/internal/sim"
	"canids/internal/trace"
	"canids/internal/vehicle"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cangen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("cangen", flag.ContinueOnError)
	var (
		duration = fs.Duration("duration", 30*time.Second, "simulated capture length")
		seed     = fs.Int64("seed", 1, "profile and traffic seed")
		traffic  = fs.Int64("traffic-seed", 0, "traffic randomness seed (0 = -seed): vary payloads and timing without changing the vehicle's identifier map")
		scenario = fs.String("scenario", "idle", "driving scenario: idle|audio|lights|cruise")
		format   = fs.String("format", "candump", "output format: candump|csv|binary")
		bitrate  = fs.Int("bitrate", bus.DefaultMSCANBitRate, "bus bit rate (bit/s)")
		out      = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	scen, err := parseScenario(*scenario)
	if err != nil {
		return err
	}

	sched := sim.NewScheduler()
	b, err := bus.New(sched, bus.Config{BitRate: *bitrate, Channel: "ms-can"})
	if err != nil {
		return err
	}
	var log trace.Trace
	b.Tap(func(r trace.Record) { log = append(log, r) })
	profile := vehicle.NewFusionProfile(*seed)
	trafficSeed := *traffic
	if trafficSeed == 0 {
		trafficSeed = *seed
	}
	profile.Attach(sched, b, vehicle.Options{Scenario: scen, Seed: trafficSeed})
	if err := sched.RunUntil(*duration); err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "candump":
		err = trace.WriteCandump(w, log)
	case "csv":
		err = trace.WriteCSV(w, log)
	case "binary":
		err = trace.WriteBinary(w, log)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cangen: %d frames over %v (%d IDs, bus load %.1f%%)\n",
		len(log), *duration, len(log.IDs()), 100*b.Load())
	return nil
}

func parseScenario(s string) (vehicle.Scenario, error) {
	switch s {
	case "idle":
		return vehicle.Idle, nil
	case "audio":
		return vehicle.Audio, nil
	case "lights":
		return vehicle.Lights, nil
	case "cruise":
		return vehicle.Cruise, nil
	default:
		return 0, fmt.Errorf("unknown scenario %q", s)
	}
}
