// Command cangen generates synthetic Fusion-like CAN traffic logs by
// running the simulated vehicle network for a configurable duration.
//
// Usage:
//
//	cangen -duration 30s -scenario idle -seed 1 -format candump -o traffic.log
//	cangen -dialect hcrl -attack SI -attack-start 5s -epoch 1478198371 -o hcrl.csv
//
// Formats: candump (text, no ground truth), csv (with source/injected
// ground truth), binary (compact stream). Alternatively -dialect writes
// the capture in a public-dataset dialect (hcrl|survival|otids) for the
// internal/dataset importers — with -attack it arms one of the paper's
// injection scenarios so the emitted capture carries labeled attack
// traffic, which is how the committed dataset fixtures are produced.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"canids/internal/attack"
	"canids/internal/bus"
	"canids/internal/can"
	"canids/internal/dataset"
	"canids/internal/sim"
	"canids/internal/trace"
	"canids/internal/vehicle"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cangen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("cangen", flag.ContinueOnError)
	var (
		duration = fs.Duration("duration", 30*time.Second, "simulated capture length")
		seed     = fs.Int64("seed", 1, "profile and traffic seed")
		traffic  = fs.Int64("traffic-seed", 0, "traffic randomness seed (0 = -seed): vary payloads and timing without changing the vehicle's identifier map")
		scenario = fs.String("scenario", "idle", "driving scenario: idle|audio|lights|cruise")
		format   = fs.String("format", "candump", "output format: candump|csv|binary")
		dialect  = fs.String("dialect", "", "write a public-dataset dialect instead of -format: "+dataset.SupportedNames())
		epoch    = fs.Int64("epoch", 0, "absolute epoch seconds added to dialect timestamps (dialect output only)")
		atkName  = fs.String("attack", "", "arm an injection attack: FI|SI|MI|WI (empty = clean capture)")
		atkFreq  = fs.Float64("attack-freq", 100, "injection attempts per second per attacker")
		atkStart = fs.Duration("attack-start", 2*time.Second, "attack start time")
		atkDur   = fs.Duration("attack-duration", 0, "attack length (0 = until capture ends)")
		bitrate  = fs.Int("bitrate", bus.DefaultMSCANBitRate, "bus bit rate (bit/s)")
		out      = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	scen, err := parseScenario(*scenario)
	if err != nil {
		return err
	}
	var dia dataset.Dialect
	if *dialect != "" {
		if dia, err = dataset.ParseDialect(*dialect); err != nil {
			return err
		}
	}
	formatSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "format" {
			formatSet = true
		}
	})
	if *dialect == "" {
		if *epoch != 0 {
			return fmt.Errorf("-epoch requires -dialect")
		}
	} else if formatSet {
		return fmt.Errorf("-dialect and -format are mutually exclusive")
	}
	if *epoch < 0 {
		return fmt.Errorf("-epoch must be non-negative")
	}
	if *atkName == "" {
		for _, f := range []string{"attack-freq", "attack-start", "attack-duration"} {
			set := false
			fs.Visit(func(fl *flag.Flag) {
				if fl.Name == f {
					set = true
				}
			})
			if set {
				return fmt.Errorf("-%s requires -attack", f)
			}
		}
	}

	sched := sim.NewScheduler()
	b, err := bus.New(sched, bus.Config{BitRate: *bitrate, Channel: "ms-can"})
	if err != nil {
		return err
	}
	var log trace.Trace
	b.Tap(func(r trace.Record) { log = append(log, r) })
	profile := vehicle.NewFusionProfile(*seed)
	trafficSeed := *traffic
	if trafficSeed == 0 {
		trafficSeed = *seed
	}
	fleet := profile.Attach(sched, b, vehicle.Options{Scenario: scen, Seed: trafficSeed})

	if *atkName != "" {
		ascen, err := parseAttack(*atkName)
		if err != nil {
			return err
		}
		cfg := attack.Config{
			Scenario:  ascen,
			Frequency: *atkFreq,
			Start:     *atkStart,
			Duration:  *atkDur,
			Seed:      sim.SplitSeed(*seed, 0xA77),
		}
		var port *bus.Port
		// ID choices mirror canattack's 'auto' picks so a dialect
		// fixture exercises the same targets as the experiment runs.
		switch ascen {
		case attack.Weak:
			e, ok := profile.FindECU("BCM")
			if !ok {
				return fmt.Errorf("profile has no BCM ECU for the WI scenario")
			}
			cfg.Filter = e.IDs()
			cfg.IDs = e.IDs()[:1]
			port, _ = fleet.Port("BCM")
		case attack.Single:
			cfg.IDs = profile.IDSet()[:1]
		case attack.Multi:
			pool := profile.IDSet()
			cfg.IDs = []can.ID{pool[10], pool[100], pool[200]}
		}
		if _, err := attack.Launch(sched, b, port, cfg); err != nil {
			return err
		}
	}

	if err := sched.RunUntil(*duration); err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if *dialect != "" {
		err = dataset.Write(w, dia, log, time.Duration(*epoch)*time.Second)
	} else {
		switch *format {
		case "candump":
			err = trace.WriteCandump(w, log)
		case "csv":
			err = trace.WriteCSV(w, log)
		case "binary":
			err = trace.WriteBinary(w, log)
		default:
			err = fmt.Errorf("unknown format %q", *format)
		}
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "cangen: %d frames over %v (%d IDs, %d injected, bus load %.1f%%)\n",
		len(log), *duration, len(log.IDs()), log.CountInjected(), 100*b.Load())
	return nil
}

func parseScenario(s string) (vehicle.Scenario, error) {
	switch s {
	case "idle":
		return vehicle.Idle, nil
	case "audio":
		return vehicle.Audio, nil
	case "lights":
		return vehicle.Lights, nil
	case "cruise":
		return vehicle.Cruise, nil
	default:
		return 0, fmt.Errorf("unknown scenario %q", s)
	}
}

func parseAttack(s string) (attack.Scenario, error) {
	switch strings.ToUpper(s) {
	case "FI", "FLOOD":
		return attack.Flood, nil
	case "SI", "SINGLE":
		return attack.Single, nil
	case "MI", "MULTI":
		return attack.Multi, nil
	case "WI", "WEAK":
		return attack.Weak, nil
	default:
		return 0, fmt.Errorf("unknown attack %q", s)
	}
}
