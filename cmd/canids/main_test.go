package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"canids/internal/attack"
	"canids/internal/bus"
	"canids/internal/can"
	"canids/internal/sim"
	"canids/internal/trace"
	"canids/internal/vehicle"
)

// makeCapture simulates traffic and writes it as CSV, returning the path.
func makeCapture(t *testing.T, dir, name string, scen vehicle.Scenario, seed int64,
	d time.Duration, atk *attack.Config) string {

	t.Helper()
	sched := sim.NewScheduler()
	b, err := bus.New(sched, bus.Config{BitRate: bus.DefaultMSCANBitRate, Channel: "ms-can"})
	if err != nil {
		t.Fatal(err)
	}
	var log trace.Trace
	b.Tap(func(r trace.Record) { log = append(log, r) })
	profile := vehicle.NewFusionProfile(1)
	profile.Attach(sched, b, vehicle.Options{Scenario: scen, Seed: seed})
	if atk != nil {
		if _, err := attack.Launch(sched, b, nil, *atk); err != nil {
			t.Fatal(err)
		}
	}
	if err := sched.RunUntil(d); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteCSV(f, log); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTrainDetectPipeline(t *testing.T) {
	dir := t.TempDir()
	clean1 := makeCapture(t, dir, "clean1.csv", vehicle.Idle, 5, 8*time.Second, nil)
	clean2 := makeCapture(t, dir, "clean2.csv", vehicle.Audio, 6, 8*time.Second, nil)
	tmpl := filepath.Join(dir, "template.json")

	var out bytes.Buffer
	if err := run([]string{"-train", "-o", tmpl, clean1, clean2}, &out); err != nil {
		t.Fatalf("train: %v", err)
	}
	if !strings.Contains(out.String(), "trained template") {
		t.Errorf("train output: %q", out.String())
	}
	if _, err := os.Stat(tmpl); err != nil {
		t.Fatalf("template not written: %v", err)
	}

	attacked := makeCapture(t, dir, "attacked.csv", vehicle.Idle, 7, 10*time.Second, &attack.Config{
		Scenario:  attack.Single,
		IDs:       []can.ID{0x0B5},
		Frequency: 100,
		Start:     2 * time.Second,
		Seed:      9,
	})
	out.Reset()
	if err := run([]string{"-detect", "-template", tmpl, "-alpha", "4", attacked}, &out); err != nil {
		t.Fatalf("detect: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "ALERT") {
		t.Fatalf("no alerts in output:\n%s", text)
	}
	if !strings.Contains(text, "suspected IDs: 0B5") {
		t.Errorf("injected ID not top suspect:\n%s", text)
	}
	if !strings.Contains(text, "detection rate") {
		t.Errorf("ground truth scoring missing:\n%s", text)
	}
}

func TestDetectCleanNoAlerts(t *testing.T) {
	dir := t.TempDir()
	clean := makeCapture(t, dir, "clean.csv", vehicle.Idle, 5, 8*time.Second, nil)
	tmpl := filepath.Join(dir, "template.json")
	if err := run([]string{"-train", "-o", tmpl, clean}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	other := makeCapture(t, dir, "other.csv", vehicle.Idle, 11, 6*time.Second, nil)
	var out bytes.Buffer
	if err := run([]string{"-detect", "-template", tmpl, other}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "ALERT") {
		t.Errorf("clean capture raised alerts:\n%s", out.String())
	}
}

func TestRunValidation(t *testing.T) {
	cases := [][]string{
		{},                             // neither mode
		{"-train", "-detect", "x.csv"}, // both modes
		{"-train"},                     // no files
		{"-detect"},                    // no files
		{"-train", "/nonexistent.csv"}, // missing input
		{"-detect", "-template", "/nonexistent.json", "x.csv"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestReadLogFormats(t *testing.T) {
	dir := t.TempDir()
	tr := trace.Trace{{Time: time.Second, Frame: can.MustFrame(0x123, []byte{1}), Channel: "c"}}

	csvPath := filepath.Join(dir, "a.csv")
	f, _ := os.Create(csvPath)
	if err := trace.WriteCSV(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := readLog(csvPath)
	if err != nil || len(got) != 1 {
		t.Errorf("readLog csv: %v %d", err, len(got))
	}

	dumpPath := filepath.Join(dir, "a.log")
	f, _ = os.Create(dumpPath)
	if err := trace.WriteCandump(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err = readLog(dumpPath)
	if err != nil || len(got) != 1 {
		t.Errorf("readLog candump: %v %d", err, len(got))
	}

	binPath := filepath.Join(dir, "a.bin")
	f, _ = os.Create(binPath)
	if err := trace.WriteBinary(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err = readLog(binPath)
	if err != nil || len(got) != 1 {
		t.Errorf("readLog binary: %v %d", err, len(got))
	}
}

func TestListScenarios(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list-scenarios"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fusion/idle/SI-100", "fusion-b/cruise/clean", "FI @ 500 Hz"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("catalogue missing %q:\n%s", want, out.String())
		}
	}
}

func TestWatchScenario(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-watch", "-scenario", "fusion/idle/SI-100",
		"-shards", "4", "-alpha", "4", "-metrics", "0"}, &out)
	if err != nil {
		t.Fatalf("watch: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"watching fusion/idle/SI-100", "ALERT", "suspected IDs:", "done:", "detection rate"} {
		if !strings.Contains(text, want) {
			t.Errorf("watch output missing %q:\n%s", want, text)
		}
	}
}

func TestWatchScenarioWithBaselines(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-watch", "-scenario", "fusion/idle/FI-500",
		"-shards", "2", "-alpha", "4", "-baselines", "-duration", "6s", "-metrics", "0"}, &out)
	if err != nil {
		t.Fatalf("watch: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "[muter-msg-entropy]") {
		t.Errorf("flooding run shows no baseline alerts:\n%s", text)
	}
	if !strings.Contains(text, "done:") {
		t.Errorf("no final summary:\n%s", text)
	}
}

func TestWatchFiles(t *testing.T) {
	dir := t.TempDir()
	clean := makeCapture(t, dir, "clean.csv", vehicle.Idle, 5, 8*time.Second, nil)
	tmpl := filepath.Join(dir, "template.json")
	if err := run([]string{"-train", "-o", tmpl, clean}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	attacked := makeCapture(t, dir, "attacked.csv", vehicle.Idle, 7, 10*time.Second, &attack.Config{
		Scenario:  attack.Single,
		IDs:       []can.ID{0x0B5},
		Frequency: 100,
		Start:     2 * time.Second,
		Seed:      9,
	})
	var out bytes.Buffer
	if err := run([]string{"-watch", "-template", tmpl, "-alpha", "4",
		"-shards", "2", "-metrics", "0", attacked}, &out); err != nil {
		t.Fatalf("watch files: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"== " + attacked, "ALERT", "done:", "detection rate"} {
		if !strings.Contains(text, want) {
			t.Errorf("watch output missing %q:\n%s", want, text)
		}
	}
}

func TestWatchValidation(t *testing.T) {
	cases := [][]string{
		{"-watch"}, // no input
		{"-watch", "-scenario", "no/such/scenario"},                      // unknown scenario
		{"-watch", "-scenario", "fusion/idle/SI-100", "-duration", "1s"}, // no room for the attack
		{"-watch", "-baselines", "x.csv"},                                // baselines need a scenario
		{"-watch", "-template", "/nonexistent", "x.csv"},                 // missing template
		{"-watch", "-train"},                                             // two modes
		{"-watch", "-whitelist", "x.csv"},                                // whitelist needs -prevent
		{"-watch", "-rate-slack", "2", "x.csv"},                          // rate-slack needs -prevent
		{"-watch", "-prevent", "-rate-slack", "2", "x.csv"},              // rate-slack needs -scenario
		{"-watch", "-prevent", "-block-top", "0", "x.csv"},               // positive block-top
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestWatchScenarioPrevent drives the closed loop from the CLI: the
// spoofed ID must be blocked, prevention scored against ground truth,
// and the blocked counter surfaced.
func TestWatchScenarioPrevent(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-watch", "-scenario", "fusion/idle/SI-100",
		"-shards", "4", "-alpha", "4", "-prevent", "-metrics", "0"}, &out)
	if err != nil {
		t.Fatalf("watch -prevent: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"prevention on", "ALERT", "BLOCK", "still quarantined",
		"attack frames blocked", "collateral", "detection rate"} {
		if !strings.Contains(text, want) {
			t.Errorf("prevention output missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "0/800 attack frames blocked") {
		t.Errorf("prevention blocked nothing:\n%s", text)
	}
}

// TestWatchScenarioPreventWhitelist arms the legal-set filter against a
// flood of changeable (non-pool) identifiers: the gateway should stop
// the flood outright.
func TestWatchScenarioPreventWhitelist(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-watch", "-scenario", "fusion/idle/FI-500",
		"-shards", "2", "-alpha", "4", "-prevent", "-whitelist", "-duration", "6s", "-metrics", "0"}, &out)
	if err != nil {
		t.Fatalf("watch -prevent -whitelist: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "attack frames blocked") {
		t.Fatalf("no prevention scoring:\n%s", text)
	}
	if strings.Contains(text, " 0/") && strings.Contains(text, "(0.0%)") {
		t.Errorf("whitelist stopped nothing:\n%s", text)
	}
}

// TestWatchFilesMultibus splits one capture across two channel names
// and serves it through the supervisor: alerts must carry bus tags.
func TestWatchFilesMultibus(t *testing.T) {
	dir := t.TempDir()
	clean := makeCapture(t, dir, "clean.csv", vehicle.Idle, 5, 8*time.Second, nil)
	tmpl := filepath.Join(dir, "template.json")
	if err := run([]string{"-train", "-o", tmpl, clean}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	attacked := makeCapture(t, dir, "attacked.csv", vehicle.Idle, 7, 10*time.Second, &attack.Config{
		Scenario:  attack.Single,
		IDs:       []can.ID{0x0B5},
		Frequency: 100,
		Start:     2 * time.Second,
		Seed:      9,
	})
	// Re-tag half the records onto a second bus.
	tr, err := readLog(attacked)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr {
		if i%2 == 1 {
			tr[i].Channel = "can-b"
		} else {
			tr[i].Channel = "can-a"
		}
	}
	mixed := filepath.Join(dir, "mixed.csv")
	f, err := os.Create(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCSV(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out bytes.Buffer
	if err := run([]string{"-watch", "-template", tmpl, "-alpha", "4",
		"-multibus", "-metrics", "0", mixed}, &out); err != nil {
		t.Fatalf("watch -multibus: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "ALERT [can-a]") && !strings.Contains(text, "ALERT [can-b]") {
		t.Errorf("no bus-tagged alerts:\n%s", text)
	}
	if !strings.Contains(text, "done:") {
		t.Errorf("no summary:\n%s", text)
	}
}
