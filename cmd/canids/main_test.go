package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"canids/internal/attack"
	"canids/internal/bus"
	"canids/internal/can"
	"canids/internal/sim"
	"canids/internal/trace"
	"canids/internal/vehicle"
)

// makeCapture simulates traffic and writes it as CSV, returning the path.
func makeCapture(t *testing.T, dir, name string, scen vehicle.Scenario, seed int64,
	d time.Duration, atk *attack.Config) string {

	t.Helper()
	sched := sim.NewScheduler()
	b, err := bus.New(sched, bus.Config{BitRate: bus.DefaultMSCANBitRate, Channel: "ms-can"})
	if err != nil {
		t.Fatal(err)
	}
	var log trace.Trace
	b.Tap(func(r trace.Record) { log = append(log, r) })
	profile := vehicle.NewFusionProfile(1)
	profile.Attach(sched, b, vehicle.Options{Scenario: scen, Seed: seed})
	if atk != nil {
		if _, err := attack.Launch(sched, b, nil, *atk); err != nil {
			t.Fatal(err)
		}
	}
	if err := sched.RunUntil(d); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteCSV(f, log); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTrainDetectPipeline(t *testing.T) {
	dir := t.TempDir()
	clean1 := makeCapture(t, dir, "clean1.csv", vehicle.Idle, 5, 8*time.Second, nil)
	clean2 := makeCapture(t, dir, "clean2.csv", vehicle.Audio, 6, 8*time.Second, nil)
	tmpl := filepath.Join(dir, "template.json")

	var out bytes.Buffer
	if err := run([]string{"-train", "-o", tmpl, clean1, clean2}, &out); err != nil {
		t.Fatalf("train: %v", err)
	}
	if !strings.Contains(out.String(), "trained template") {
		t.Errorf("train output: %q", out.String())
	}
	if _, err := os.Stat(tmpl); err != nil {
		t.Fatalf("template not written: %v", err)
	}

	attacked := makeCapture(t, dir, "attacked.csv", vehicle.Idle, 7, 10*time.Second, &attack.Config{
		Scenario:  attack.Single,
		IDs:       []can.ID{0x0B5},
		Frequency: 100,
		Start:     2 * time.Second,
		Seed:      9,
	})
	out.Reset()
	if err := run([]string{"-detect", "-template", tmpl, "-alpha", "4", attacked}, &out); err != nil {
		t.Fatalf("detect: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "ALERT") {
		t.Fatalf("no alerts in output:\n%s", text)
	}
	if !strings.Contains(text, "suspected IDs: 0B5") {
		t.Errorf("injected ID not top suspect:\n%s", text)
	}
	if !strings.Contains(text, "detection rate") {
		t.Errorf("ground truth scoring missing:\n%s", text)
	}
}

func TestDetectCleanNoAlerts(t *testing.T) {
	dir := t.TempDir()
	clean := makeCapture(t, dir, "clean.csv", vehicle.Idle, 5, 8*time.Second, nil)
	tmpl := filepath.Join(dir, "template.json")
	if err := run([]string{"-train", "-o", tmpl, clean}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	other := makeCapture(t, dir, "other.csv", vehicle.Idle, 11, 6*time.Second, nil)
	var out bytes.Buffer
	if err := run([]string{"-detect", "-template", tmpl, other}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "ALERT") {
		t.Errorf("clean capture raised alerts:\n%s", out.String())
	}
}

func TestRunValidation(t *testing.T) {
	cases := [][]string{
		{},                             // neither mode
		{"-train", "-detect", "x.csv"}, // both modes
		{"-train"},                     // no files
		{"-detect"},                    // no files
		{"-train", "/nonexistent.csv"}, // missing input
		{"-detect", "-template", "/nonexistent.json", "x.csv"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestReadLogFormats(t *testing.T) {
	dir := t.TempDir()
	tr := trace.Trace{{Time: time.Second, Frame: can.MustFrame(0x123, []byte{1}), Channel: "c"}}

	csvPath := filepath.Join(dir, "a.csv")
	f, _ := os.Create(csvPath)
	if err := trace.WriteCSV(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := readLog(csvPath)
	if err != nil || len(got) != 1 {
		t.Errorf("readLog csv: %v %d", err, len(got))
	}

	dumpPath := filepath.Join(dir, "a.log")
	f, _ = os.Create(dumpPath)
	if err := trace.WriteCandump(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err = readLog(dumpPath)
	if err != nil || len(got) != 1 {
		t.Errorf("readLog candump: %v %d", err, len(got))
	}

	binPath := filepath.Join(dir, "a.bin")
	f, _ = os.Create(binPath)
	if err := trace.WriteBinary(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err = readLog(binPath)
	if err != nil || len(got) != 1 {
		t.Errorf("readLog binary: %v %d", err, len(got))
	}
}

func TestListScenarios(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list-scenarios"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fusion/idle/SI-100", "fusion-b/cruise/clean", "FI @ 500 Hz"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("catalogue missing %q:\n%s", want, out.String())
		}
	}
}

func TestWatchScenario(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-watch", "-scenario", "fusion/idle/SI-100",
		"-shards", "4", "-alpha", "4", "-metrics", "0"}, &out)
	if err != nil {
		t.Fatalf("watch: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"watching fusion/idle/SI-100", "ALERT", "suspected IDs:", "done:", "detection rate"} {
		if !strings.Contains(text, want) {
			t.Errorf("watch output missing %q:\n%s", want, text)
		}
	}
}

func TestWatchScenarioWithBaselines(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-watch", "-scenario", "fusion/idle/FI-500",
		"-shards", "2", "-alpha", "4", "-baselines", "-duration", "6s", "-metrics", "0"}, &out)
	if err != nil {
		t.Fatalf("watch: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "[muter-msg-entropy]") {
		t.Errorf("flooding run shows no baseline alerts:\n%s", text)
	}
	if !strings.Contains(text, "done:") {
		t.Errorf("no final summary:\n%s", text)
	}
}

func TestWatchFiles(t *testing.T) {
	dir := t.TempDir()
	clean := makeCapture(t, dir, "clean.csv", vehicle.Idle, 5, 8*time.Second, nil)
	tmpl := filepath.Join(dir, "template.json")
	if err := run([]string{"-train", "-o", tmpl, clean}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	attacked := makeCapture(t, dir, "attacked.csv", vehicle.Idle, 7, 10*time.Second, &attack.Config{
		Scenario:  attack.Single,
		IDs:       []can.ID{0x0B5},
		Frequency: 100,
		Start:     2 * time.Second,
		Seed:      9,
	})
	var out bytes.Buffer
	if err := run([]string{"-watch", "-template", tmpl, "-alpha", "4",
		"-shards", "2", "-metrics", "0", attacked}, &out); err != nil {
		t.Fatalf("watch files: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"== " + attacked, "ALERT", "done:", "detection rate"} {
		if !strings.Contains(text, want) {
			t.Errorf("watch output missing %q:\n%s", want, text)
		}
	}
}

func TestWatchValidation(t *testing.T) {
	cases := [][]string{
		{"-watch"}, // no input
		{"-watch", "-scenario", "no/such/scenario"},                      // unknown scenario
		{"-watch", "-scenario", "fusion/idle/SI-100", "-duration", "1s"}, // no room for the attack
		{"-watch", "-baselines", "x.csv"},                                // baselines need a scenario
		{"-watch", "-template", "/nonexistent", "x.csv"},                 // missing template
		{"-watch", "-train"},                                             // two modes
		{"-watch", "-whitelist", "x.csv"},                                // whitelist needs -prevent
		{"-watch", "-rate-slack", "2", "x.csv"},                          // rate-slack needs -prevent
		{"-watch", "-prevent", "-rate-slack", "2", "x.csv"},              // rate-slack needs -scenario
		{"-watch", "-prevent", "-block-top", "0", "x.csv"},               // positive block-top
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestWatchScenarioPrevent drives the closed loop from the CLI: the
// spoofed ID must be blocked, prevention scored against ground truth,
// and the blocked counter surfaced.
func TestWatchScenarioPrevent(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-watch", "-scenario", "fusion/idle/SI-100",
		"-shards", "4", "-alpha", "4", "-prevent", "-metrics", "0"}, &out)
	if err != nil {
		t.Fatalf("watch -prevent: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"prevention on", "ALERT", "BLOCK", "still quarantined",
		"attack frames blocked", "collateral", "detection rate"} {
		if !strings.Contains(text, want) {
			t.Errorf("prevention output missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "0/800 attack frames blocked") {
		t.Errorf("prevention blocked nothing:\n%s", text)
	}
}

// TestWatchScenarioPreventWhitelist arms the legal-set filter against a
// flood of changeable (non-pool) identifiers: the gateway should stop
// the flood outright.
func TestWatchScenarioPreventWhitelist(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-watch", "-scenario", "fusion/idle/FI-500",
		"-shards", "2", "-alpha", "4", "-prevent", "-whitelist", "-duration", "6s", "-metrics", "0"}, &out)
	if err != nil {
		t.Fatalf("watch -prevent -whitelist: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "attack frames blocked") {
		t.Fatalf("no prevention scoring:\n%s", text)
	}
	if strings.Contains(text, " 0/") && strings.Contains(text, "(0.0%)") {
		t.Errorf("whitelist stopped nothing:\n%s", text)
	}
}

// TestWatchFilesMultibus splits one capture across two channel names
// and serves it through the supervisor: alerts must carry bus tags.
func TestWatchFilesMultibus(t *testing.T) {
	dir := t.TempDir()
	clean := makeCapture(t, dir, "clean.csv", vehicle.Idle, 5, 8*time.Second, nil)
	tmpl := filepath.Join(dir, "template.json")
	if err := run([]string{"-train", "-o", tmpl, clean}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	attacked := makeCapture(t, dir, "attacked.csv", vehicle.Idle, 7, 10*time.Second, &attack.Config{
		Scenario:  attack.Single,
		IDs:       []can.ID{0x0B5},
		Frequency: 100,
		Start:     2 * time.Second,
		Seed:      9,
	})
	// Re-tag half the records onto a second bus.
	tr, err := readLog(attacked)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr {
		if i%2 == 1 {
			tr[i].Channel = "can-b"
		} else {
			tr[i].Channel = "can-a"
		}
	}
	mixed := filepath.Join(dir, "mixed.csv")
	f, err := os.Create(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCSV(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out bytes.Buffer
	if err := run([]string{"-watch", "-template", tmpl, "-alpha", "4",
		"-multibus", "-metrics", "0", mixed}, &out); err != nil {
		t.Fatalf("watch -multibus: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "ALERT [can-a]") && !strings.Contains(text, "ALERT [can-b]") {
		t.Errorf("no bus-tagged alerts:\n%s", text)
	}
	if !strings.Contains(text, "done:") {
		t.Errorf("no summary:\n%s", text)
	}
}

// syncBuffer is a Writer safe to read while run() writes from another
// goroutine (the in-process serve tests).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// alertLines extracts the ALERT lines of a run's output — the part that
// must be invariant between a retrained and a snapshot-loaded model.
func alertLines(text string) []string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "ALERT") {
			out = append(out, line)
		}
	}
	return out
}

// TestTrainSaveDetectLoad pins the persisted-model path end to end: a
// snapshot saved by -train drives -detect and -watch to byte-identical
// alert output versus the legacy template file.
func TestTrainSaveDetectLoad(t *testing.T) {
	dir := t.TempDir()
	clean := makeCapture(t, dir, "clean.csv", vehicle.Idle, 5, 8*time.Second, nil)
	tmpl := filepath.Join(dir, "template.json")
	snap := filepath.Join(dir, "model.snap")

	var out bytes.Buffer
	if err := run([]string{"-train", "-alpha", "4", "-o", tmpl, "-save", snap, clean}, &out); err != nil {
		t.Fatalf("train: %v", err)
	}
	if !strings.Contains(out.String(), "snapshot written to "+snap) {
		t.Errorf("train output missing snapshot line:\n%s", out.String())
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}

	attacked := makeCapture(t, dir, "attacked.csv", vehicle.Idle, 7, 10*time.Second, &attack.Config{
		Scenario:  attack.Single,
		IDs:       []can.ID{0x0B5},
		Frequency: 100,
		Start:     2 * time.Second,
		Seed:      9,
	})
	var viaTemplate, viaSnapshot bytes.Buffer
	if err := run([]string{"-detect", "-template", tmpl, "-alpha", "4", attacked}, &viaTemplate); err != nil {
		t.Fatalf("detect -template: %v", err)
	}
	if err := run([]string{"-detect", "-load", snap, attacked}, &viaSnapshot); err != nil {
		t.Fatalf("detect -load: %v", err)
	}
	want := alertLines(viaTemplate.String())
	got := alertLines(viaSnapshot.String())
	if len(want) == 0 {
		t.Fatalf("no alerts to compare:\n%s", viaTemplate.String())
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("-load alerts differ from -template alerts:\n%v\nvs\n%v", got, want)
	}

	var watched bytes.Buffer
	if err := run([]string{"-watch", "-load", snap, "-shards", "2", "-metrics", "0", attacked}, &watched); err != nil {
		t.Fatalf("watch -load: %v", err)
	}
	if got := alertLines(watched.String()); len(got) != len(want) {
		t.Errorf("watch -load found %d alerts, detect found %d", len(got), len(want))
	}
}

// TestWatchScenarioSaveLoad round-trips a scenario-trained prevention
// model through a snapshot: the -load replay must print the same ALERT
// lines as the training run, without retraining.
func TestWatchScenarioSaveLoad(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "model.snap")
	// The training run arms the full policy through flags...
	saveArgs := []string{"-watch", "-scenario", "fusion/idle/SI-100", "-alpha", "4",
		"-shards", "2", "-metrics", "0", "-prevent", "-rate-slack", "4",
		"-whitelist", "-quarantine", "20s", "-save", snap}
	var trained bytes.Buffer
	if err := run(saveArgs, &trained); err != nil {
		t.Fatalf("watch -save: %v\n%s", err, trained.String())
	}
	if !strings.Contains(trained.String(), "snapshot written to "+snap) {
		t.Fatalf("no snapshot line:\n%s", trained.String())
	}

	var loaded bytes.Buffer
	// ...and the replay gives none of the model or policy flags: alpha,
	// whitelist, budgets, quarantine all come back from the snapshot.
	loadArgs := []string{"-watch", "-scenario", "fusion/idle/SI-100",
		"-shards", "2", "-metrics", "0", "-prevent", "-load", snap}
	if err := run(loadArgs, &loaded); err != nil {
		t.Fatalf("watch -load: %v\n%s", err, loaded.String())
	}
	if !strings.Contains(loaded.String(), "model from "+snap) {
		t.Errorf("loaded run does not announce the snapshot:\n%s", loaded.String())
	}
	for _, section := range []struct {
		name string
		pick func(string) []string
	}{
		{"ALERT", alertLines},
		{"BLOCK", func(s string) []string { return matchingLines(s, "BLOCK ") }},
		{"prevention score", func(s string) []string { return matchingLines(s, "prevention:") }},
	} {
		want := section.pick(trained.String())
		got := section.pick(loaded.String())
		if len(want) == 0 {
			t.Fatalf("training run has no %s lines:\n%s", section.name, trained.String())
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("loaded model %s lines differ:\n%v\nvs\n%v", section.name, got, want)
		}
	}
}

// matchingLines returns the output lines containing substr.
func matchingLines(text, substr string) []string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return out
}

// TestServeEndToEnd drives the daemon through the real CLI: train+save,
// serve on a random port, ingest the capture over HTTP, shut down via
// the admin endpoint, and check the served alert count equals the
// offline -detect run on the same file.
func TestServeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	clean := makeCapture(t, dir, "clean.csv", vehicle.Idle, 5, 8*time.Second, nil)
	snap := filepath.Join(dir, "model.snap")
	if err := run([]string{"-train", "-alpha", "4", "-o", filepath.Join(dir, "t.json"), "-save", snap, clean}, &bytes.Buffer{}); err != nil {
		t.Fatalf("train: %v", err)
	}
	attacked := makeCapture(t, dir, "attacked.csv", vehicle.Idle, 7, 10*time.Second, &attack.Config{
		Scenario:  attack.Single,
		IDs:       []can.ID{0x0B5},
		Frequency: 100,
		Start:     2 * time.Second,
		Seed:      9,
	})
	var offline bytes.Buffer
	if err := run([]string{"-detect", "-load", snap, attacked}, &offline); err != nil {
		t.Fatalf("detect: %v", err)
	}
	wantAlerts := len(alertLines(offline.String()))
	if wantAlerts == 0 {
		t.Fatal("offline run raised no alerts")
	}

	out := &syncBuffer{}
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- run([]string{"-serve", "-addr", "127.0.0.1:0", "-load", snap, "-shards", "2"}, out)
	}()
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address:\n%s", out.String())
		}
		if m := regexp.MustCompile(`serving on (http://\S+) `).FindStringSubmatch(out.String()); m != nil {
			base = m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	body, err := os.ReadFile(attacked)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/ingest/ms-can?format=csv", "text/csv", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/admin/shutdown", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var down struct {
		AlertsTotal int `json:"alerts_total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&down); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if down.AlertsTotal != wantAlerts {
		t.Errorf("served %d alerts, offline run found %d", down.AlertsTotal, wantAlerts)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve returned: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "served ") {
		t.Errorf("no final summary:\n%s", out.String())
	}
}

// TestNewestCheckpoint pins the startup-fallback scan: the base path
// itself never matches, corrupt candidates are skipped even when they
// are newer, and the newest loadable per-bus checkpoint wins.
func TestNewestCheckpoint(t *testing.T) {
	dir := t.TempDir()
	clean := makeCapture(t, dir, "clean.csv", vehicle.Idle, 5, 6*time.Second, nil)
	model := filepath.Join(dir, "model.snap")
	if err := run([]string{"-train", "-alpha", "4", "-o", filepath.Join(dir, "t.json"), "-save", model, clean}, &bytes.Buffer{}); err != nil {
		t.Fatalf("train: %v", err)
	}
	base := filepath.Join(dir, "ck.snap")
	if _, _, err := newestCheckpoint(base); err == nil {
		t.Fatal("scan with no candidates succeeded, want error")
	}
	if _, _, err := newestCheckpoint(model); err == nil {
		t.Fatal("base snapshot matched its own checkpoint pattern")
	}
	data, err := os.ReadFile(model)
	if err != nil {
		t.Fatal(err)
	}
	valid := filepath.Join(dir, "ck.ms-can.snap")
	if err := os.WriteFile(valid, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ck.other.snap"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(valid, old, old); err != nil {
		t.Fatal(err)
	}
	_, name, err := newestCheckpoint(base)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if name != valid {
		t.Errorf("picked %s, want %s (corrupt-but-newer candidate must lose)", name, valid)
	}
}

// TestServeStartsFromCheckpoint covers the startup fallback end to end:
// with the base snapshot gone, -serve -checkpoint boots from the newest
// per-bus checkpoint, warns on stdout, and surfaces the degradation in
// /stats for the life of the daemon.
func TestServeStartsFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	clean := makeCapture(t, dir, "clean.csv", vehicle.Idle, 5, 6*time.Second, nil)
	model := filepath.Join(dir, "model.snap")
	if err := run([]string{"-train", "-alpha", "4", "-o", filepath.Join(dir, "t.json"), "-save", model, clean}, &bytes.Buffer{}); err != nil {
		t.Fatalf("train: %v", err)
	}
	ck := filepath.Join(dir, "ck.snap")
	data, err := os.ReadFile(model)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ck.ms-can.snap"), data, 0o644); err != nil {
		t.Fatal(err)
	}

	out := &syncBuffer{}
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- run([]string{"-serve", "-addr", "127.0.0.1:0",
			"-load", filepath.Join(dir, "gone.snap"), "-adapt", "-checkpoint", ck}, out)
	}()
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address:\n%s", out.String())
		}
		if m := regexp.MustCompile(`serving on (http://\S+) `).FindStringSubmatch(out.String()); m != nil {
			base = m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !strings.Contains(out.String(), "starting from checkpoint") {
		t.Errorf("no fallback warning:\n%s", out.String())
	}

	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(stats), "started from checkpoint") {
		t.Errorf("degradation missing from /stats: %s", stats)
	}

	resp, err = http.Post(base+"/admin/shutdown", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shutdown status %d", resp.StatusCode)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve returned: %v\n%s", err, out.String())
	}
}

// TestServeValidation pins the new flag-combination errors.
func TestServeValidation(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{"-serve"},                                                  // no snapshot
		{"-serve", "-load", "/nonexistent.snap"},                    // missing snapshot
		{"-serve", "-load", "x.snap", "file.csv"},                   // no input files
		{"-serve", "-watch"},                                        // two modes
		{"-train", "-load", "x.snap", "-save", "y.snap", "c.csv"},   // load+save
		{"-detect", "-save", filepath.Join(dir, "x.snap"), "a.csv"}, // save without training
		{"-watch", "-save", filepath.Join(dir, "x.snap"), "a.csv"},  // save in file mode
		{"-watch", "-scenario", "fusion/idle/SI-100", "-prevent", "-rate-slack", "2", "-load", "x.snap"}, // slack with load
		{"-detect", "-load", "x.snap", "-alpha", "4", "a.csv"},                                           // alpha is baked into the snapshot
		{"-watch", "-load", "x.snap", "-window", "2s", "a.csv"},                                          // window is baked into the snapshot
		{"-detect", "-load", "x.snap", "-template", "t.json", "a.csv"},                                   // template is baked into the snapshot
		{"-watch", "-load", "x.snap", "-max-body", "1024", "a.csv"},                                      // ingest limits need -serve
		{"-watch", "-load", "x.snap", "-ingest-timeout", "5s", "a.csv"},                                  // ingest limits need -serve
		{"-watch", "-load", "x.snap", "-faults", "engine.frame:panic@1", "a.csv"},                        // fault injection needs -serve
		{"-serve", "-load", "x.snap", "-max-body", "-1"},                                                 // negative body cap
		{"-serve", "-load", "x.snap", "-ingest-timeout", "-1s"},                                          // negative read deadline
		{"-serve", "-load", "x.snap", "-faults", "bogus spec"},                                           // malformed fault rule
		{"-watch", "-load", "x.snap", "-record", dir, "a.csv"},                                           // recording needs -serve
		{"-detect", "-load", "x.snap", "-journal", dir, "a.csv"},                                         // journaling needs -serve
		{"-serve", "-load", "x.snap", "-replay", dir},                                                    // two modes
		{"-replay", filepath.Join(dir, "no-such-capture")},                                               // missing capture
		{"-replay", dir, "stray.csv"},                                                                    // replay takes no files
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestServeAdaptEndToEnd drives online adaptation through the real
// CLI: serve -adapt -checkpoint behind an admin token, ingest clean
// traffic, require a promotion in /stats, checkpoint through the
// (authenticated) admin verb, and restart the daemon from the
// version-2 checkpoint.
func TestServeAdaptEndToEnd(t *testing.T) {
	dir := t.TempDir()
	clean := makeCapture(t, dir, "clean.csv", vehicle.Idle, 5, 8*time.Second, nil)
	snap := filepath.Join(dir, "model.snap")
	if err := run([]string{"-train", "-alpha", "4", "-o", filepath.Join(dir, "t.json"), "-save", snap, clean}, &bytes.Buffer{}); err != nil {
		t.Fatalf("train: %v", err)
	}
	drifted := makeCapture(t, dir, "drifted.csv", vehicle.Idle, 21, 10*time.Second, nil)
	ck := filepath.Join(dir, "ck.snap")

	startDaemon := func(args []string, out *syncBuffer) (string, chan error) {
		t.Helper()
		serveErr := make(chan error, 1)
		go func() { serveErr <- run(args, out) }()
		deadline := time.Now().Add(10 * time.Second)
		for {
			if time.Now().After(deadline) {
				t.Fatalf("server never announced its address:\n%s", out.String())
			}
			if m := regexp.MustCompile(`serving on (http://\S+) `).FindStringSubmatch(out.String()); m != nil {
				return m[1], serveErr
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	req := func(method, url, token string, body []byte) (int, string) {
		t.Helper()
		r, err := http.NewRequest(method, url, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			r.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(data)
	}

	out := &syncBuffer{}
	base, serveErr := startDaemon([]string{
		"-serve", "-addr", "127.0.0.1:0", "-load", snap, "-shards", "2",
		"-adapt", "-adapt-every", "3", "-checkpoint", ck, "-admin-token", "tok",
	}, out)
	if !strings.Contains(out.String(), "+adapt mode") {
		t.Errorf("startup line does not announce adaptation:\n%s", out.String())
	}

	body, err := os.ReadFile(drifted)
	if err != nil {
		t.Fatal(err)
	}
	if code, resp := req("POST", base+"/ingest/ms-can?format=csv", "", body); code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", code, resp)
	}
	// Ingest returns once every record is in the (buffered) feed; the
	// engines may still be scoring, so poll for the promotion.
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, stats := req("GET", base+"/stats", "", nil)
		if code == http.StatusOK && regexp.MustCompile(`"promotions":[1-9]`).MatchString(stats) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no promotion in /stats (%d):\n%s", code, stats)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if code, _ := req("POST", base+"/admin/checkpoint", "", nil); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated checkpoint: %d, want 401", code)
	}
	if code, resp := req("POST", base+"/admin/checkpoint", "tok", nil); code != http.StatusOK {
		t.Fatalf("checkpoint status %d: %s", code, resp)
	}
	if code, _ := req("POST", base+"/admin/shutdown", "tok", nil); code != http.StatusOK {
		t.Fatalf("shutdown failed: %d", code)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve returned: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "adaptation: ") {
		t.Errorf("no adaptation summary:\n%s", out.String())
	}

	// Restart from the per-bus checkpoint: the v2 snapshot loads, its
	// provenance is announced, and the daemon serves.
	ckFile := filepath.Join(dir, "ck.ms-can.snap")
	if _, err := os.Stat(ckFile); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}
	out2 := &syncBuffer{}
	base2, serveErr2 := startDaemon([]string{"-serve", "-addr", "127.0.0.1:0", "-load", ckFile, "-shards", "2"}, out2)
	if !strings.Contains(out2.String(), "adaptation provenance") {
		t.Errorf("restart does not announce the snapshot's adaptation metadata:\n%s", out2.String())
	}
	if code, resp := req("POST", base2+"/ingest/ms-can?format=csv", "", body); code != http.StatusOK {
		t.Fatalf("restart ingest status %d: %s", code, resp)
	}
	if code, _ := req("POST", base2+"/admin/shutdown", "", nil); code != http.StatusOK {
		t.Fatalf("restart shutdown failed: %d", code)
	}
	if err := <-serveErr2; err != nil {
		t.Fatalf("restarted serve returned: %v\n%s", err, out2.String())
	}
}

// TestNewestCheckpointTieBreak pins the equal-mtime fix: coarse
// filesystem timestamps make ties routine (a rotation writes the
// primary and its .prev generation within the same tick), and the old
// scan let glob order decide — with an extensionless base, a stale
// .prev generation that sorted first would beat a primary checkpoint
// of the same age. Ties now break primary-first, then by name.
func TestNewestCheckpointTieBreak(t *testing.T) {
	dir := t.TempDir()
	clean := makeCapture(t, dir, "clean.csv", vehicle.Idle, 5, 6*time.Second, nil)
	model := filepath.Join(dir, "model.snap")
	if err := run([]string{"-train", "-alpha", "4", "-o", filepath.Join(dir, "t.json"), "-save", model, clean}, &bytes.Buffer{}); err != nil {
		t.Fatalf("train: %v", err)
	}
	data, err := os.ReadFile(model)
	if err != nil {
		t.Fatal(err)
	}
	when := time.Now().Add(-time.Hour).Truncate(time.Second)
	write := func(name string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(p, when, when); err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Extensionless base: the pattern "ck.*" matches the .prev
	// generations too (they are also deduped against the explicit .prev
	// glob), and "ck.aa.prev" sorts before "ck.zz".
	stalePrev := write("ck.aa.prev")
	primary := write("ck.zz")
	_, name, err := newestCheckpoint(filepath.Join(dir, "ck"))
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if name != primary {
		t.Errorf("equal mtimes picked %s, want the primary %s", name, primary)
	}

	// Recency still beats generation: a strictly newer .prev wins.
	newer := when.Add(time.Minute)
	if err := os.Chtimes(stalePrev, newer, newer); err != nil {
		t.Fatal(err)
	}
	if _, name, err = newestCheckpoint(filepath.Join(dir, "ck")); err != nil || name != stalePrev {
		t.Errorf("newer .prev generation lost the scan: %s, %v", name, err)
	}

	// With an extension, a primary ties against its own rotated .prev.
	pri := write("ck2.ms-can.snap")
	write("ck2.ms-can.snap.prev")
	if _, name, err = newestCheckpoint(filepath.Join(dir, "ck2.snap")); err != nil || name != pri {
		t.Errorf("primary vs own .prev at equal mtime: picked %s (%v), want %s", name, err, pri)
	}

	// Two tied primaries: the lexicographically smaller name, always.
	first := write("ck3.aa.snap")
	write("ck3.bb.snap")
	if _, name, err = newestCheckpoint(filepath.Join(dir, "ck3.snap")); err != nil || name != first {
		t.Errorf("tied primaries: picked %s (%v), want %s", name, err, first)
	}
}

// TestServeRecordReplayEndToEnd drives the incident workflow through
// the real CLI: serve with -record, ingest an attacked capture over
// HTTP, shut down, then -replay the capture directory and require the
// bit-for-bit journal verdict on stdout.
func TestServeRecordReplayEndToEnd(t *testing.T) {
	dir := t.TempDir()
	clean := makeCapture(t, dir, "clean.csv", vehicle.Idle, 5, 8*time.Second, nil)
	snap := filepath.Join(dir, "model.snap")
	if err := run([]string{"-train", "-alpha", "4", "-o", filepath.Join(dir, "t.json"), "-save", snap, clean}, &bytes.Buffer{}); err != nil {
		t.Fatalf("train: %v", err)
	}
	attacked := makeCapture(t, dir, "attacked.csv", vehicle.Idle, 7, 10*time.Second, &attack.Config{
		Scenario:  attack.Single,
		IDs:       []can.ID{0x0B5},
		Frequency: 100,
		Start:     2 * time.Second,
		Seed:      9,
	})
	capture := filepath.Join(dir, "incident")

	out := &syncBuffer{}
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- run([]string{"-serve", "-addr", "127.0.0.1:0", "-load", snap,
			"-shards", "2", "-record", capture}, out)
	}()
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address:\n%s", out.String())
		}
		if m := regexp.MustCompile(`serving on (http://\S+) `).FindStringSubmatch(out.String()); m != nil {
			base = m[1]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !strings.Contains(out.String(), "recording to "+capture) {
		t.Errorf("serve does not announce the recording:\n%s", out.String())
	}
	// -record with no -journal defaults the alert journal into the capture.
	if !strings.Contains(out.String(), "alert journal: "+filepath.Join(capture, "journal")) {
		t.Errorf("journal did not default into the capture directory:\n%s", out.String())
	}

	body, err := os.ReadFile(attacked)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/ingest/ms-can?format=csv", "text/csv", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	resp, err = http.Post(base+"/admin/shutdown", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := <-serveErr; err != nil {
		t.Fatalf("serve returned: %v\n%s", err, out.String())
	}

	var rep bytes.Buffer
	if err := run([]string{"-replay", capture}, &rep); err != nil {
		t.Fatalf("replay: %v\n%s", err, rep.String())
	}
	text := rep.String()
	if !strings.Contains(text, "alert journal reproduced bit-for-bit") {
		t.Fatalf("replay did not verify the journal:\n%s", text)
	}
	m := regexp.MustCompile(`replayed \d+ records: \d+ frames, \d+ windows, (\d+) alerts`).FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("no replay summary:\n%s", text)
	}
	if m[1] == "0" {
		t.Errorf("replay reproduced zero alerts; the verdict is vacuous:\n%s", text)
	}
}

// TestServeAdaptValidation pins the adaptation flag-combination errors.
func TestServeAdaptValidation(t *testing.T) {
	cases := [][]string{
		{"-serve", "-load", "x.snap", "-checkpoint", "c.snap"}, // checkpoint without adapt
		{"-serve", "-load", "x.snap", "-adapt-every", "3"},     // adapt-every without adapt
		{"-watch", "-adapt", "a.csv"},                          // adapt without serve
		{"-detect", "-checkpoint", "c.snap", "a.csv"},          // checkpoint without serve
		{"-train", "-admin-token", "t", "a.csv"},               // token without serve
		{"-detect", "-adapt-every", "2", "a.csv"},              // cadence without serve
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
