// Command canids trains the bit-entropy golden template and runs
// intrusion detection over CAN logs.
//
// Train a template from clean captures (candump or csv):
//
//	canids -train -window 1s -o template.json clean1.log clean2.log
//
// Detect over a capture, inferring malicious IDs:
//
//	canids -detect -template template.json -alpha 5 -rank 10 attacked.csv
//
// Watch a stream through the sharded engine with live metrics — either
// a named scenario from the built-in matrix (trains on the matrix's
// clean traffic, then streams the scenario live) or captured log files:
//
//	canids -list-scenarios
//	canids -watch -scenario fusion/idle/SI-100 -shards 4 -baselines
//	canids -watch -template template.json -shards 4 attacked.csv
//
// Close the paper's prevention loop while watching — a gateway
// pre-filter ahead of the engine, alerts feeding inference, inferred IDs
// quarantined so the rest of the attack is dropped mid-stream:
//
//	canids -watch -scenario fusion/idle/SI-100 -prevent -quarantine 30s
//	canids -watch -scenario fusion/idle/FI-500 -prevent -whitelist
//
// Serve a capture that carries several buses with one engine per
// channel:
//
//	canids -watch -template template.json -multibus mixed.log
//
// Persist the trained model as a versioned, checksummed snapshot
// (template + pool + gateway/response policy) and reuse it anywhere a
// mode would otherwise retrain:
//
//	canids -train -save model.snap clean1.log clean2.log
//	canids -watch -scenario fusion/idle/SI-100 -prevent -rate-slack 2 -save model.snap
//	canids -watch -load model.snap attacked.csv
//	canids -detect -load model.snap attacked.csv
//
// Run the long-lived serving daemon — HTTP ingest per bus, live stats
// and alerts, snapshot hot reload at window boundaries, graceful drain:
//
//	canids -serve -addr 127.0.0.1:8080 -load model.snap -shards 4
//	curl --data-binary @attacked.csv 'http://127.0.0.1:8080/ingest/ms-can?format=csv'
//	curl -X POST --data-binary @model2.snap http://127.0.0.1:8080/admin/reload
//	curl -X POST http://127.0.0.1:8080/admin/shutdown
//
// Serve a whole fleet on a fixed engine pool — vehicles (channels) are
// consistent-hashed onto -fleet engines, idle vehicles are torn down
// after -fleet-idle, and per-vehicle ingest quotas shed floods with
// 429; terminate TLS in-process instead of behind a proxy:
//
//	canids -serve -load model.snap -fleet 8 -fleet-idle 5m \
//	    -quota-frames 100000 -quota-window 1m \
//	    -tls-cert server.crt -tls-key server.key
//
// Adapt online while serving — clean live windows re-learn the gateway
// rate budgets and refresh the template, promotions land at window
// boundaries, and checkpoints persist what was learned as version-2
// snapshots that a restart -loads; protect the admin verbs with a
// bearer token:
//
//	canids -serve -load model.snap -adapt -checkpoint ck.snap -admin-token $TOKEN
//	curl http://127.0.0.1:8080/admin/adapt -H "Authorization: Bearer $TOKEN"
//	curl -X POST 'http://127.0.0.1:8080/admin/adapt?action=pause' -H "Authorization: Bearer $TOKEN"
//	canids -serve -load ck.ms-can.snap    # budgets survive the restart
//
// Record an incident while serving, then replay it as a local test
// case — the capture carries the snapshot, the exact per-bus record
// stream, and the alert journal, and the replay must reproduce that
// journal bit for bit; scrape /metrics for Prometheus-format counters:
//
//	canids -serve -load model.snap -record incident
//	curl --data-binary @attacked.csv 'http://127.0.0.1:8080/ingest/ms-can?format=csv'
//	curl http://127.0.0.1:8080/metrics
//	curl -X POST http://127.0.0.1:8080/admin/shutdown
//	canids -replay incident
//
// When the input carries ground truth (csv, or a matrix scenario),
// detection, inference and prevention (attack frames blocked vs
// legitimate collateral drops) are also scored.
package main

import (
	"bytes"
	"context"
	"crypto/tls"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"canids/internal/baseline"
	"canids/internal/can"
	"canids/internal/core"
	"canids/internal/dataset"
	"canids/internal/detect"
	"canids/internal/engine"
	"canids/internal/engine/scenario"
	"canids/internal/fault"
	"canids/internal/gateway"
	"canids/internal/infer"
	"canids/internal/metrics"
	"canids/internal/response"
	"canids/internal/server"
	"canids/internal/store"
	"canids/internal/trace"
	"canids/internal/vehicle"
)

// templateFile is the JSON document canids persists: the golden template
// plus the legal ID pool observed during training (used by inference).
type templateFile struct {
	Template core.Template `json:"template"`
	Pool     []can.ID      `json:"pool"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "canids:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("canids", flag.ContinueOnError)
	var (
		train    = fs.Bool("train", false, "build a golden template from clean logs")
		detect   = fs.Bool("detect", false, "run detection over logs")
		watch    = fs.Bool("watch", false, "stream logs or a scenario through the sharded engine")
		serve    = fs.Bool("serve", false, "run the HTTP serving daemon over a -load snapshot")
		list     = fs.Bool("list-scenarios", false, "print the scenario-matrix catalogue")
		tmplPath = fs.String("template", "template.json", "template file path")
		loadPath = fs.String("load", "", "model snapshot to serve/detect/watch with (skips retraining; persisted gateway/response policy wins over the policy flags)")
		savePath = fs.String("save", "", "persist the trained model as a snapshot (with -train, or -watch -scenario)")
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address for -serve")
		window   = fs.Duration("window", time.Second, "detection window")
		alpha    = fs.Float64("alpha", 5, "threshold multiplier α (paper range [3,10])")
		rank     = fs.Int("rank", infer.DefaultRank, "inference candidate set size")
		out      = fs.String("o", "", "output file for -train (default: -template path)")

		scenarioName = fs.String("scenario", "", "named scenario from the matrix (see -list-scenarios)")
		seed         = fs.Int64("seed", 1, "scenario-matrix base seed")
		duration     = fs.Duration("duration", 0, "override scenario duration")
		shards       = fs.Int("shards", 1, "engine worker shards")
		baselines    = fs.Bool("baselines", false, "run the Müter and Song baselines alongside (scenario mode)")
		metricsEvery = fs.Duration("metrics", 2*time.Second, "live metrics interval for -watch (0 disables)")

		logLevel  = fs.String("log-level", "info", "structured-log threshold on stderr: debug, info, warn or error")
		logFormat = fs.String("log-format", "text", "structured-log encoding on stderr: text or json")

		replayDir  = fs.String("replay", "", "re-run a -record capture directory and reproduce its alert journal bit-for-bit")
		recordDir  = fs.String("record", "", "with -serve, capture the post-demux record stream + snapshot into this directory for -replay")
		journalDir = fs.String("journal", "", "with -serve, append alerts to rotating per-bus binary journals under this directory (default <record>/journal with -record)")
		adaptOn    = fs.Bool("adapt", false, "with -serve, learn budgets/template online from live clean windows")
		adaptEvery = fs.Int("adapt-every", 0, "with -adapt, promotion cadence in clean windows, also the warm-up before the first promotion (0 = defaults)")
		checkpoint = fs.String("checkpoint", "", "with -adapt, persist adapted models as v2 snapshots to this base path (per bus: model.<bus>.snap)")
		adminToken = fs.String("admin-token", os.Getenv("CANIDS_ADMIN_TOKEN"), "with -serve, require this bearer token on /admin/* (default $CANIDS_ADMIN_TOKEN; empty = open)")
		maxBody    = fs.Int64("max-body", 256<<20, "with -serve, max ingest request body bytes (413 beyond; 0 = unlimited)")
		ingestTO   = fs.Duration("ingest-timeout", time.Minute, "with -serve, per-read deadline on ingest bodies (408 on stall; 0 disables)")
		faultSpec  = fs.String("faults", "", "with -serve, arm deterministic fault injection for chaos drills (spec: point[scope]:kind@N[xM];...)")
		fleet      = fs.Int("fleet", 0, "with -serve, share this many engines across all vehicles (consistent hashing; 0 = one engine per bus)")
		fleetIdle  = fs.Duration("fleet-idle", 0, "with -fleet, tear down a vehicle's lane after this idle stream time (0 = never)")
		quotaN     = fs.Int("quota-frames", 0, "with -serve, per-vehicle ingest quota in frames per -quota-window (0 = unlimited)")
		quotaW     = fs.Duration("quota-window", time.Minute, "with -quota-frames, the quota accounting window (stream time)")
		tlsCert    = fs.String("tls-cert", "", "with -serve, terminate TLS with this PEM certificate (needs -tls-key)")
		tlsKey     = fs.String("tls-key", "", "with -serve, the PEM private key for -tls-cert")

		prevent    = fs.Bool("prevent", false, "close the loop: gateway pre-filter + alert-driven blocking")
		whitelist  = fs.Bool("whitelist", false, "with -prevent, also drop IDs outside the legal pool")
		quarantine = fs.Duration("quarantine", 30*time.Second, "with -prevent, block duration per alert (0 = forever)")
		blockTop   = fs.Int("block-top", 1, "with -prevent, how many top suspects to block per alert")
		rateSlack  = fs.Float64("rate-slack", 0, "with -prevent in scenario mode, per-ID rate-limit slack (0 disables)")
		minScore   = fs.Float64("min-score", 0, "with -prevent, ignore alerts below this score (no knee-jerk blocks)")
		multibus   = fs.Bool("multibus", false, "serve one engine per bus channel (supervisor)")

		evalPath     = fs.String("eval", "", "evaluate a real-dialect capture file or directory: train on the attack-free part, stream the rest through the engine")
		evalSplit    = fs.Float64("eval-split", 0.3, "with -eval, cap on the training-prefix fraction per capture")
		evalDialect  = fs.String("eval-dialect", "", "with -eval, force the capture dialect instead of sniffing: "+dataset.SupportedNames())
		listDialects = fs.Bool("list-dialects", false, "print the supported dataset dialects")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		return err
	}
	files := fs.Args()
	modes := 0
	for _, m := range []bool{*train, *detect, *watch, *serve, *list, *replayDir != "", *evalPath != "", *listDialects} {
		if m {
			modes++
		}
	}
	if modes != 1 {
		return fmt.Errorf("exactly one of -train, -detect, -watch, -serve, -replay, -eval, -list-dialects or -list-scenarios is required")
	}
	if *evalPath == "" {
		explicit := make(map[string]bool)
		fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		for _, name := range []string{"eval-split", "eval-dialect"} {
			if explicit[name] {
				return fmt.Errorf("-%s needs -eval", name)
			}
		}
	}
	if *loadPath != "" && *savePath != "" {
		return fmt.Errorf("-load and -save are exclusive: nothing is trained when a snapshot is loaded")
	}
	if *loadPath != "" {
		// The snapshot is the model: its core config (window, alpha, …)
		// and template win, so explicitly giving those flags would be
		// silently ignored — reject instead, like -rate-slack with -load.
		explicit := make(map[string]bool)
		fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		for _, name := range []string{"alpha", "window", "template"} {
			if explicit[name] {
				return fmt.Errorf("-%s is baked into the snapshot; with -load the model's value wins (retrain to retune)", name)
			}
		}
	}
	if *savePath != "" && !*train && !(*watch && *scenarioName != "") {
		return fmt.Errorf("-save needs a mode that trains: -train, or -watch -scenario")
	}
	if !*serve {
		explicit := make(map[string]bool)
		fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		for _, name := range []string{"adapt", "adapt-every", "checkpoint", "admin-token", "max-body", "ingest-timeout", "faults", "record", "journal", "fleet", "fleet-idle", "quota-frames", "quota-window", "tls-cert", "tls-key"} {
			if explicit[name] {
				return fmt.Errorf("-%s needs -serve", name)
			}
		}
	}

	switch {
	case *listDialects:
		return runListDialects(stdout)
	case *evalPath != "":
		if len(files) != 0 {
			return fmt.Errorf("-eval takes no positional files; pass the capture (or directory) to -eval itself")
		}
		if *evalSplit <= 0 || *evalSplit >= 1 {
			return fmt.Errorf("-eval-split must be in (0,1), got %v", *evalSplit)
		}
		return runEval(evalOptions{
			target:  *evalPath,
			split:   *evalSplit,
			dialect: *evalDialect,
			window:  *window,
			alpha:   *alpha,
			shards:  *shards,
			logger:  logger,
		}, stdout)
	case *list:
		return runList(*seed, stdout)
	case *replayDir != "":
		if len(files) != 0 {
			return fmt.Errorf("-replay takes no input files; the capture directory carries the stream")
		}
		return runReplay(*replayDir, logger, stdout)
	case *serve:
		if *loadPath == "" {
			return fmt.Errorf("-serve needs -load <snapshot> (train once with -save, serve forever)")
		}
		if len(files) != 0 {
			return fmt.Errorf("-serve takes no input files; ingest over HTTP")
		}
		if !*adaptOn {
			for flag, set := range map[string]bool{
				"-adapt-every": *adaptEvery != 0,
				"-checkpoint":  *checkpoint != "",
			} {
				if set {
					return fmt.Errorf("%s needs -adapt", flag)
				}
			}
		}
		if *maxBody < 0 {
			return fmt.Errorf("-max-body must be >= 0, got %d", *maxBody)
		}
		if *ingestTO < 0 {
			return fmt.Errorf("-ingest-timeout must be >= 0, got %v", *ingestTO)
		}
		if *fleet < 0 {
			return fmt.Errorf("-fleet must be >= 0, got %d", *fleet)
		}
		if *fleet == 0 && *fleetIdle != 0 {
			return fmt.Errorf("-fleet-idle needs -fleet")
		}
		if *quotaN < 0 {
			return fmt.Errorf("-quota-frames must be >= 0, got %d", *quotaN)
		}
		if *quotaN > 0 && *quotaW <= 0 {
			return fmt.Errorf("-quota-window must be positive with -quota-frames, got %v", *quotaW)
		}
		if (*tlsCert == "") != (*tlsKey == "") {
			return fmt.Errorf("-tls-cert and -tls-key come as a pair: both or neither")
		}
		if *journalDir == "" && *recordDir != "" {
			// A capture without an alert journal has nothing for -replay
			// to diff against; default it into the capture directory.
			*journalDir = filepath.Join(*recordDir, "journal")
		}
		return runServe(serveOptions{
			addr:          *addr,
			loadPath:      *loadPath,
			shards:        *shards,
			adapt:         *adaptOn,
			adaptEvery:    *adaptEvery,
			checkpoint:    *checkpoint,
			adminToken:    *adminToken,
			maxBody:       *maxBody,
			ingestTimeout: *ingestTO,
			faults:        *faultSpec,
			record:        *recordDir,
			journal:       *journalDir,
			fleet:         *fleet,
			fleetIdle:     *fleetIdle,
			quotaFrames:   *quotaN,
			quotaWindow:   *quotaW,
			tlsCert:       *tlsCert,
			tlsKey:        *tlsKey,
			logger:        logger,
		}, stdout)
	case *watch:
		return runWatch(watchOptions{
			files:        files,
			tmplPath:     *tmplPath,
			loadPath:     *loadPath,
			savePath:     *savePath,
			window:       *window,
			alpha:        *alpha,
			rank:         *rank,
			scenarioName: *scenarioName,
			seed:         *seed,
			duration:     *duration,
			shards:       *shards,
			baselines:    *baselines,
			metricsEvery: *metricsEvery,
			prevent:      *prevent,
			whitelist:    *whitelist,
			quarantine:   *quarantine,
			blockTop:     *blockTop,
			rateSlack:    *rateSlack,
			minScore:     *minScore,
			multibus:     *multibus,
			logger:       logger,
		}, stdout)
	case *train:
		if len(files) == 0 {
			return fmt.Errorf("no input logs given")
		}
		dest := *out
		if dest == "" {
			dest = *tmplPath
		}
		return runTrain(files, *window, *alpha, dest, *savePath, stdout)
	default:
		if len(files) == 0 {
			return fmt.Errorf("no input logs given")
		}
		return runDetect(files, *tmplPath, *loadPath, *window, *alpha, *rank, stdout)
	}
}

// buildLogger turns the -log-level/-log-format flags into the process
// logger. Structured logs go to stderr; stdout stays reserved for the
// mode transcripts that scripts (and ci.sh) parse.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level must be debug, info, warn or error, got %q", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format must be text or json, got %q", format)
	}
}

// runList prints the scenario catalogue.
func runList(seed int64, stdout io.Writer) error {
	specs := scenario.Matrix(seed)
	fmt.Fprintf(stdout, "%d scenarios (base seed %d):\n", len(specs), seed)
	for _, s := range specs {
		kind := "clean"
		if !s.Clean() {
			kind = fmt.Sprintf("%s @ %.0f Hz", s.Campaign.Attack, s.Campaign.Frequency)
		}
		fmt.Fprintf(stdout, "  %-26s %v  %s\n", s.Name, s.Duration, kind)
	}
	return nil
}

// readLog loads a whole capture, picking the format by extension.
func readLog(path string) (trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec, err := trace.NewDecoder(trace.FormatForPath(path), f)
	if err != nil {
		return nil, err
	}
	return trace.ReadAll(dec)
}

func runTrain(files []string, window time.Duration, alpha float64, dest, savePath string, stdout io.Writer) error {
	var windows []trace.Trace
	poolSet := make(map[can.ID]bool)
	for _, path := range files {
		tr, err := readLog(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		tr.Sort()
		for _, id := range tr.IDs() {
			poolSet[id] = true
		}
		windows = append(windows, tr.Windows(window, false)...)
	}
	cfg := core.DefaultConfig()
	cfg.Window = window
	cfg.Alpha = alpha
	tmpl, err := core.BuildTemplate(windows, cfg.Width, cfg.MinFrames)
	if err != nil {
		return err
	}
	pool := make([]can.ID, 0, len(poolSet))
	for id := range poolSet {
		pool = append(pool, id)
	}
	tf := templateFile{Template: tmpl, Pool: pool}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(tf); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "trained template from %d windows (%d IDs); max per-bit range %.3e\nwritten to %s\n",
		tmpl.Windows, len(pool), tmpl.MaxRange(), dest)
	if savePath != "" {
		snap, err := store.New(cfg, tmpl, pool)
		if err != nil {
			return err
		}
		if err := store.Save(savePath, snap); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "snapshot written to %s\n", savePath)
	}
	return nil
}

// loadModel restores a detector-ready model either from a store
// snapshot (-load; the snapshot's own core config wins, so serving and
// offline runs agree bit for bit) or from the legacy template JSON.
func loadModel(tmplPath, loadPath string, window time.Duration, alpha float64) (core.Config, core.Template, []can.ID, *store.Snapshot, error) {
	if loadPath != "" {
		snap, err := store.Load(loadPath)
		if err != nil {
			return core.Config{}, core.Template{}, nil, nil, err
		}
		return snap.Core, snap.Template, snap.Pool, snap, nil
	}
	cfg := core.DefaultConfig()
	cfg.Window = window
	cfg.Alpha = alpha
	raw, err := os.ReadFile(tmplPath)
	if err != nil {
		return core.Config{}, core.Template{}, nil, nil, err
	}
	var tf templateFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		return core.Config{}, core.Template{}, nil, nil, fmt.Errorf("%s: %w", tmplPath, err)
	}
	return cfg, tf.Template, tf.Pool, nil, nil
}

func runDetect(files []string, tmplPath, loadPath string, window time.Duration, alpha float64, rank int, stdout io.Writer) error {
	cfg, tmpl, pool, _, err := loadModel(tmplPath, loadPath, window, alpha)
	if err != nil {
		return err
	}
	d, err := core.New(cfg)
	if err != nil {
		return err
	}
	if err := d.SetTemplate(tmpl); err != nil {
		return err
	}
	tf := templateFile{Template: tmpl, Pool: pool}

	for _, path := range files {
		tr, err := readLog(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		tr.Sort()
		d.Reset()
		var alerts []detect.Alert
		for _, r := range tr {
			alerts = append(alerts, d.Observe(r)...)
		}
		alerts = append(alerts, d.Flush()...)

		fmt.Fprintf(stdout, "%s: %d frames, %d alerts\n", path, len(tr), len(alerts))
		for _, a := range alerts {
			fmt.Fprintf(stdout, "  ALERT %s\n", a)
			if len(tf.Pool) > 0 {
				res, err := infer.Rank(a, tf.Pool, can.StandardIDBits, rank)
				if err == nil {
					fmt.Fprintf(stdout, "        suspected IDs: %s\n", formatIDs(res.Candidates))
				}
			}
		}
		if tr.CountInjected() > 0 {
			dr := metrics.DetectionRate(tr, alerts)
			fmt.Fprintf(stdout, "  ground truth: %d injected frames, detection rate %.1f%%\n",
				tr.CountInjected(), 100*dr)
		}
	}
	return nil
}

func formatIDs(ids []can.ID) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = id.String()
	}
	return strings.Join(parts, " ")
}

// watchOptions collects the -watch flags.
type watchOptions struct {
	files        []string
	tmplPath     string
	loadPath     string
	savePath     string
	window       time.Duration
	alpha        float64
	rank         int
	scenarioName string
	seed         int64
	duration     time.Duration
	shards       int
	baselines    bool
	metricsEvery time.Duration
	prevent      bool
	whitelist    bool
	quarantine   time.Duration
	blockTop     int
	rateSlack    float64
	minScore     float64
	multibus     bool
	logger       *slog.Logger
}

func (o watchOptions) validate() error {
	if !o.prevent {
		for flag, set := range map[string]bool{
			"-whitelist":  o.whitelist,
			"-rate-slack": o.rateSlack != 0,
			"-min-score":  o.minScore != 0,
		} {
			if set {
				return fmt.Errorf("%s needs -prevent", flag)
			}
		}
	}
	if o.blockTop <= 0 {
		return fmt.Errorf("-block-top must be positive, got %d", o.blockTop)
	}
	if o.rateSlack > 0 && o.scenarioName == "" {
		return fmt.Errorf("-rate-slack needs -scenario (rate budgets learn from the matrix's clean traffic)")
	}
	if o.rateSlack > 0 && o.loadPath != "" {
		return fmt.Errorf("-rate-slack retrains budgets; with -load they come from the snapshot")
	}
	return nil
}

// engineParts is everything needed to build one engine — one per run,
// or one per bus channel under -multibus. Each build gets private
// baseline detectors and, with -prevent, a private gateway + responder
// (per-bus policy state: each bus has its own rate windows and
// blocklist).
type engineParts struct {
	cfg     engine.Config
	tmpl    core.Template
	pool    []can.ID              // legal / inference pool; may be empty for bare captures
	windows []trace.Trace         // clean training windows (scenario mode only)
	gwPol   *store.GatewayPolicy  // persisted gateway policy (-load): budgets injected, whitelist restored
	respPol *store.ResponsePolicy // persisted response policy (-load): replaces the policy flags
	opts    watchOptions

	// responders collects what build created, keyed by channel, for the
	// end-of-run prevention report. Only the goroutine driving the
	// supervisor demux (or the single-engine caller) writes it.
	responders map[string]*response.Responder
	gateways   map[string]*gateway.Gateway
}

func (p *engineParts) build(channel string) (*engine.Engine, error) {
	cfg := p.cfg // value copy; Baselines/Gateway/Responder set per build
	if p.opts.baselines {
		m, err := baseline.NewMuter(baseline.DefaultMuterConfig())
		if err != nil {
			return nil, err
		}
		s, err := baseline.NewSong(baseline.DefaultSongConfig())
		if err != nil {
			return nil, err
		}
		for _, d := range []detect.Detector{m, s} {
			if err := d.Train(p.windows); err != nil {
				return nil, fmt.Errorf("train %s: %w", d.Name(), err)
			}
		}
		cfg.Baselines = []detect.Detector{m, s}
	}
	if p.opts.prevent {
		gw, resp, err := p.buildPolicy()
		if err != nil {
			return nil, err
		}
		cfg.Gateway, cfg.Responder = gw, resp
		p.responders[channel] = resp
		p.gateways[channel] = gw
	}
	return engine.NewTrained(cfg, p.tmpl)
}

// buildPolicy constructs one gateway + responder pair — the single
// source of truth for how flags and persisted snapshot policy combine,
// shared by every engine build and by the -save snapshot export (so
// what is persisted is exactly what the run enforces).
func (p *engineParts) buildPolicy() (*gateway.Gateway, *response.Responder, error) {
	if len(p.pool) == 0 {
		return nil, nil, fmt.Errorf("-prevent needs a legal ID pool (train with a pool, or use -scenario)")
	}
	gwCfg := gateway.Config{RateWindow: p.cfg.Core.Window, RateSlack: p.opts.rateSlack}
	if p.gwPol != nil && len(p.gwPol.Budgets) > 0 {
		// Budgets restored from a snapshot: enforce them as-is; no
		// clean traffic needed.
		gwCfg.Budgets = p.gwPol.Budgets
		gwCfg.RateWindow = p.gwPol.RateWindow
		gwCfg.RateSlack = p.gwPol.RateSlack
	}
	if p.gwPol != nil && len(p.gwPol.Legal) > 0 {
		// The snapshot was trained with a whitelist; restore it, so a
		// -load replay enforces the model it persisted.
		gwCfg.Legal = p.gwPol.Legal
	} else if p.opts.whitelist {
		gwCfg.Legal = p.pool
	}
	gw, err := gateway.New(gwCfg)
	if err != nil {
		return nil, nil, err
	}
	if p.opts.rateSlack > 0 && gwCfg.Budgets == nil {
		if err := gw.LearnRates(p.windows); err != nil {
			return nil, nil, err
		}
	}
	respCfg := response.DefaultConfig(p.pool)
	if p.respPol != nil {
		// Persisted response policy wins over the flags, like the
		// serve daemon: the snapshot is the model.
		respCfg.Rank = p.respPol.Rank
		respCfg.BlockTop = p.respPol.BlockTop
		respCfg.Quarantine = p.respPol.Quarantine
		respCfg.MinScore = p.respPol.MinScore
	} else {
		respCfg.Rank = p.opts.rank
		respCfg.BlockTop = p.opts.blockTop
		respCfg.Quarantine = p.opts.quarantine
		respCfg.MinScore = p.opts.minScore
	}
	resp, err := response.New(gw, respCfg)
	if err != nil {
		return nil, nil, err
	}
	return gw, resp, nil
}

// runWatch streams a scenario or log files through the sharded engine,
// printing alerts as the ordered merge releases them and a metrics line
// on a fixed wall-clock cadence.
func runWatch(opts watchOptions, stdout io.Writer) error {
	if err := opts.validate(); err != nil {
		return err
	}
	cfg := engine.DefaultConfig()
	cfg.Shards = opts.shards
	cfg.Core.Window = opts.window
	cfg.Core.Alpha = opts.alpha
	cfg.Logger = opts.logger

	if opts.scenarioName != "" {
		return watchScenario(opts, cfg, stdout)
	}
	if len(opts.files) == 0 {
		return fmt.Errorf("-watch needs log files or -scenario")
	}
	if opts.baselines {
		return fmt.Errorf("-baselines needs -scenario (baselines train on the matrix's clean traffic)")
	}
	coreCfg, tmpl, pool, snap, err := loadModel(opts.tmplPath, opts.loadPath, opts.window, opts.alpha)
	if err != nil {
		return err
	}
	cfg.Core = coreCfg
	parts := newEngineParts(cfg, tmpl, pool, nil, opts)
	if snap != nil {
		parts.gwPol = snap.Gateway
		parts.respPol = snap.Response
	}
	for _, path := range opts.files {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		src, err := engine.NewLogSource(f, trace.FormatForPath(path))
		if err != nil {
			f.Close()
			return err
		}
		fmt.Fprintf(stdout, "== %s\n", path)
		// CSV and binary captures carry ground truth; tally it in
		// passing so the stream is scored like -detect would.
		var injected trace.Trace
		err = watchStream(parts, teeInjected{src: src, injected: &injected}, &injected, stdout)
		f.Close()
		if err != nil {
			return err
		}
	}
	return nil
}

func newEngineParts(cfg engine.Config, tmpl core.Template, pool []can.ID,
	windows []trace.Trace, opts watchOptions) *engineParts {
	return &engineParts{
		cfg: cfg, tmpl: tmpl, pool: pool, windows: windows, opts: opts,
		responders: make(map[string]*response.Responder),
		gateways:   make(map[string]*gateway.Gateway),
	}
}

// watchScenario trains on the matrix's clean traffic for the scenario's
// profile, then streams the scenario live (simulation goroutine →
// bounded channel → engine).
func watchScenario(opts watchOptions, cfg engine.Config, stdout io.Writer) error {
	specs := scenario.Matrix(opts.seed)
	spec, ok := scenario.Find(specs, opts.scenarioName)
	if !ok {
		return fmt.Errorf("unknown scenario %q (try -list-scenarios)", opts.scenarioName)
	}
	if opts.duration > 0 {
		spec.Duration = opts.duration
	}

	var (
		tmpl    core.Template
		pool    []can.ID
		windows []trace.Trace
		gwPol   *store.GatewayPolicy
		respPol *store.ResponsePolicy
		origin  string
	)
	if opts.loadPath != "" {
		// Persisted model: no retraining. The baselines are not part of
		// a snapshot, so they still train on the matrix's clean traffic.
		snap, err := store.Load(opts.loadPath)
		if err != nil {
			return err
		}
		cfg.Core = snap.Core
		tmpl = snap.Template
		gwPol = snap.Gateway
		respPol = snap.Response
		if pool = snap.Pool; len(pool) == 0 {
			pool = scenarioPool(spec)
		}
		if opts.baselines {
			if windows, err = scenario.TrainingWindows(specs, spec.Profile, cfg.Core.Window); err != nil {
				return err
			}
		}
		origin = fmt.Sprintf("model from %s (%d training windows)", opts.loadPath, tmpl.Windows)
	} else {
		var err error
		windows, err = scenario.TrainingWindows(specs, spec.Profile, cfg.Core.Window)
		if err != nil {
			return err
		}
		tmpl, err = core.BuildTemplate(windows, cfg.Core.Width, cfg.Core.MinFrames)
		if err != nil {
			return err
		}
		pool = scenarioPool(spec)
		origin = fmt.Sprintf("template from %d clean windows", tmpl.Windows)
	}
	parts := newEngineParts(cfg, tmpl, pool, windows, opts)
	parts.gwPol = gwPol
	parts.respPol = respPol
	if opts.loadPath == "" && opts.savePath != "" {
		snap, err := saveScenarioSnapshot(parts, stdout)
		if err != nil {
			return err
		}
		// Run on exactly what was persisted (budgets injected, not
		// relearned), so the -save run and a later -load replay enforce
		// the same model.
		parts.gwPol, parts.respPol = snap.Gateway, snap.Response
	}
	mode := ""
	if opts.prevent {
		mode = ", prevention on"
	}
	fmt.Fprintf(stdout, "watching %s (%v, %d shards, %s%s)\n",
		spec.Name, spec.Duration, cfg.Shards, origin, mode)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := make(chan trace.Record, engine.DefaultBuffer)
	streamErr := make(chan error, 1)
	go func() { streamErr <- spec.Stream(ctx, ch) }()

	// Tally ground truth on the way past: DetectionRate only inspects
	// injected records, so keeping just those scores the stream without
	// retaining it.
	var injected trace.Trace
	src := teeInjected{src: engine.NewChanSource(ctx, ch), injected: &injected}
	if err := watchStream(parts, src, &injected, stdout); err != nil {
		return err
	}
	return <-streamErr
}

// saveScenarioSnapshot persists what the scenario run just trained: the
// template and pool always, and — with -prevent — the gateway policy
// (whitelist, budgets learned from the clean windows) and the response
// policy the flags describe, so a later -load or -serve replays the
// same model without the matrix.
func saveScenarioSnapshot(parts *engineParts, stdout io.Writer) (*store.Snapshot, error) {
	opts := parts.opts
	snap, err := store.New(parts.cfg.Core, parts.tmpl, parts.pool)
	if err != nil {
		return nil, err
	}
	if opts.prevent {
		// The same constructor every engine build uses, exported through
		// store's capture helpers — what is persisted is exactly what
		// the run enforces.
		gw, resp, err := parts.buildPolicy()
		if err != nil {
			return nil, err
		}
		snap.Gateway = store.CaptureGateway(gw)
		snap.Response = store.CaptureResponse(resp)
	}
	if err := store.Save(opts.savePath, snap); err != nil {
		return nil, err
	}
	fmt.Fprintf(stdout, "snapshot written to %s\n", opts.savePath)
	return snap, nil
}

// serveOptions collects the -serve flags.
type serveOptions struct {
	addr          string
	loadPath      string
	shards        int
	adapt         bool
	adaptEvery    int
	checkpoint    string
	adminToken    string
	maxBody       int64
	ingestTimeout time.Duration
	faults        string
	record        string
	journal       string
	fleet         int
	fleetIdle     time.Duration
	quotaFrames   int
	quotaWindow   time.Duration
	tlsCert       string
	tlsKey        string
	logger        *slog.Logger
}

// runServe is the long-running daemon: restore the model from a
// snapshot, serve the HTTP API until a signal or an admin shutdown,
// then drain cleanly (final partial windows are flushed, like the
// offline detector's Flush). With -adapt the daemon also learns from
// live clean windows and, with -checkpoint, persists what it learned.
func runServe(opts serveOptions, stdout io.Writer) error {
	var inj *fault.Injector
	if opts.faults != "" {
		parsed, err := fault.Parse(opts.faults)
		if err != nil {
			return err
		}
		inj = parsed
		defer inj.Close()
		fmt.Fprintf(stdout, "fault injection armed: %s\n", inj)
	}
	snap, err := store.Load(opts.loadPath)
	var degraded []string
	if err != nil {
		// The base snapshot is unusable. With checkpointing configured,
		// a previous run's adapted models are on disk right next to it —
		// starting degraded from the newest valid one beats refusing to
		// protect the bus at all. The fallback is loud: a warning here,
		// and a note in /stats and /healthz for as long as the daemon
		// runs.
		if opts.checkpoint == "" {
			return err
		}
		ck, name, cerr := newestCheckpoint(opts.checkpoint)
		if cerr != nil {
			return fmt.Errorf("%w (checkpoint fallback: %v)", err, cerr)
		}
		fmt.Fprintf(stdout, "warning: %v; starting from checkpoint %s\n", err, name)
		degraded = append(degraded, fmt.Sprintf("started from checkpoint %s: %v", name, err))
		snap = ck
	}
	// Surface a broken key pair before the pipeline spins up, not at the
	// first TLS handshake.
	var tlsCert tls.Certificate
	if opts.tlsCert != "" {
		cert, err := tls.LoadX509KeyPair(opts.tlsCert, opts.tlsKey)
		if err != nil {
			return fmt.Errorf("load TLS key pair: %w", err)
		}
		tlsCert = cert
	}
	cfg := server.Config{
		Snapshot:       snap,
		Shards:         opts.shards,
		CheckpointPath: opts.checkpoint,
		AdminToken:     opts.adminToken,
		MaxBody:        opts.maxBody,
		IngestTimeout:  opts.ingestTimeout,
		// A slab that cannot enter the feed in 5s means the engines are
		// hopelessly behind — shed with 429 rather than stall the client.
		ShedAfter:   5 * time.Second,
		Fault:       inj,
		Degraded:    degraded,
		RecordDir:   opts.record,
		JournalDir:  opts.journal,
		QuotaFrames: opts.quotaFrames,
		QuotaWindow: opts.quotaWindow,
		Logger:      opts.logger,
	}
	if opts.fleet > 0 {
		cfg.Fleet = &server.FleetOptions{Engines: opts.fleet, IdleAfter: opts.fleetIdle}
	}
	if opts.adapt {
		// The cadence doubles as the warm-up: "-adapt-every 3" promotes
		// first after 3 clean windows, then every 3.
		cfg.Adapt = &server.AdaptOptions{Every: opts.adaptEvery, MinWindows: opts.adaptEvery}
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	mode := "detect"
	if snap.Gateway != nil || snap.Response != nil {
		mode = "prevent"
	}
	if opts.adapt {
		mode += "+adapt"
	}
	if opts.fleet > 0 {
		mode += fmt.Sprintf("+fleet/%d", opts.fleet)
	}
	// The pipeline deliberately does not run on the signal context: a
	// signal triggers a graceful drain below, not a mid-window abort.
	if err := srv.Start(context.Background()); err != nil {
		return err
	}
	scheme := "http"
	if opts.tlsCert != "" {
		scheme = "https"
	}
	fmt.Fprintf(stdout, "serving on %s://%s (%s mode, window %v, alpha %g, %d training windows, %d pool IDs, %d shards)\n",
		scheme, ln.Addr(), mode, snap.Core.Window, snap.Core.Alpha, snap.Template.Windows, len(snap.Pool), opts.shards)
	if opts.quotaFrames > 0 {
		fmt.Fprintf(stdout, "per-vehicle ingest quota: %d frames per %v\n", opts.quotaFrames, opts.quotaWindow)
	}
	if opts.record != "" {
		fmt.Fprintf(stdout, "recording to %s (replay with: canids -replay %s)\n", opts.record, opts.record)
	}
	if opts.journal != "" {
		fmt.Fprintf(stdout, "alert journal: %s\n", opts.journal)
	}
	if snap.Adapt != nil {
		fmt.Fprintf(stdout, "snapshot carries adaptation provenance: %d promotions over %d windows (drift %.2e)\n",
			snap.Adapt.Promotions, snap.Adapt.Windows, snap.Adapt.Drift)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// ReadHeaderTimeout bounds idle connections and IdleTimeout reaps
	// keep-alives. ReadTimeout seeds the whole-request deadline; the
	// ingest handler extends it per read via ResponseController, so a
	// long streaming body stays alive as long as bytes keep arriving.
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if opts.ingestTimeout > 0 {
		hs.ReadTimeout = opts.ingestTimeout
	}
	httpErr := make(chan error, 1)
	if opts.tlsCert != "" {
		hs.TLSConfig = &tls.Config{Certificates: []tls.Certificate{tlsCert}, MinVersion: tls.VersionTLS12}
		go func() { httpErr <- hs.ServeTLS(ln, "", "") }()
	} else {
		go func() { httpErr <- hs.Serve(ln) }()
	}

	select {
	case <-ctx.Done():
		// Restore default signal handling immediately: the drain below
		// waits for in-flight ingests, and a second Ctrl+C must be able
		// to kill the process rather than be swallowed.
		stop()
		fmt.Fprintln(stdout, "signal received; draining (interrupt again to force quit)")
	case <-srv.Done():
		// Admin shutdown (the handler drained before responding), or the
		// pipeline died; Drain below surfaces which.
	case err := <-httpErr:
		srv.Drain()
		return err
	}
	drainErr := srv.Drain()
	// Let in-flight responses (the admin shutdown summary) finish.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	hs.Shutdown(shutdownCtx)
	total, _ := srv.Stats()
	fmt.Fprintf(stdout, "served %d frames, %d windows, %d alerts\n",
		total.Frames, total.Windows, srv.AlertsTotal())
	if opts.adapt {
		var promotions, windows uint64
		for _, st := range srv.AdaptStatus() {
			promotions += st.Promotions
			windows += st.Windows
		}
		fmt.Fprintf(stdout, "adaptation: %d promotions over %d windows\n", promotions, windows)
	}
	return drainErr
}

// runReplay re-runs a -record capture as a local incident
// reproduction: the same snapshot (checksum-verified against the
// manifest), the same shards/batching/adaptation options, and the
// captured per-bus record stream pushed through the same supervisor
// path the daemon served it on. When the recorded run kept an alert
// journal, the replayed journal must match it byte for byte — any
// divergence is an error.
func runReplay(dir string, logger *slog.Logger, stdout io.Writer) error {
	m, err := server.LoadManifest(dir)
	if err != nil {
		return err
	}
	snap, err := m.LoadSnapshot(dir)
	if err != nil {
		return err
	}
	replayJournal := filepath.Join(dir, "replay")
	// A previous replay's journal would byte-diff against stale
	// segments; start clean.
	if err := os.RemoveAll(replayJournal); err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Snapshot:   snap,
		Shards:     m.Shards,
		Buffer:     m.Buffer,
		Batch:      m.Batch,
		Adapt:      m.Adapt,
		JournalDir: replayJournal,
		Logger:     logger,
	})
	if err != nil {
		return err
	}
	if err := srv.Start(context.Background()); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "replaying %s (window %v, alpha %g, %d shards)\n",
		dir, snap.Core.Window, snap.Core.Alpha, m.Shards)
	records, replayErr := srv.ReplayCapture(dir)
	drainErr := srv.Drain()
	if replayErr != nil {
		return replayErr
	}
	if drainErr != nil {
		return drainErr
	}
	total, _ := srv.Stats()
	fmt.Fprintf(stdout, "replayed %d records: %d frames, %d windows, %d alerts\n",
		records, total.Frames, total.Windows, srv.AlertsTotal())
	for _, note := range srv.DegradedNotes() {
		fmt.Fprintf(stdout, "note: %s\n", note)
	}
	recorded := m.JournalDir(dir)
	if recorded == "" {
		fmt.Fprintln(stdout, "recorded run kept no alert journal; nothing to verify")
		return nil
	}
	if err := compareJournalDirs(recorded, replayJournal); err != nil {
		return fmt.Errorf("replay diverged from the recorded run: %w", err)
	}
	fmt.Fprintf(stdout, "alert journal reproduced bit-for-bit (%s == %s)\n", recorded, replayJournal)
	return nil
}

// compareJournalDirs byte-compares two alert-journal directories: the
// same files (rotated segments included) holding the same bytes.
func compareJournalDirs(want, got string) error {
	wantNames, err := journalFiles(want)
	if err != nil {
		return err
	}
	gotNames, err := journalFiles(got)
	if err != nil {
		return err
	}
	if strings.Join(wantNames, "\n") != strings.Join(gotNames, "\n") {
		return fmt.Errorf("journal files differ: recorded %v, replayed %v", wantNames, gotNames)
	}
	for _, name := range wantNames {
		a, err := os.ReadFile(filepath.Join(want, name))
		if err != nil {
			return err
		}
		b, err := os.ReadFile(filepath.Join(got, name))
		if err != nil {
			return err
		}
		if !bytes.Equal(a, b) {
			return fmt.Errorf("journal %s differs (%d recorded bytes vs %d replayed)", name, len(a), len(b))
		}
	}
	return nil
}

// journalFiles lists a journal directory's file names, sorted.
func journalFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// newestCheckpoint scans the per-bus checkpoint files derived from base
// (model.snap -> model.<bus>.snap, plus their .prev generations) and
// returns the newest one that still loads and validates. Corrupt or
// missing candidates are skipped; an error means no usable checkpoint
// exists at all. Coarse-mtime filesystems make timestamp ties common,
// so equal mtimes break deterministically — a primary checkpoint beats
// a .prev generation (rotation keeps the primary at least as fresh),
// then the lexicographically smaller name wins — rather than letting
// glob order decide.
func newestCheckpoint(base string) (*store.Snapshot, string, error) {
	ext := filepath.Ext(base)
	pattern := strings.TrimSuffix(base, ext) + ".*" + ext
	paths, err := filepath.Glob(pattern)
	if err != nil {
		return nil, "", err
	}
	prev, _ := filepath.Glob(pattern + ".prev")
	// An extensionless base makes pattern "base.*", which matched the
	// .prev generations already — dedupe so no candidate is stat'd and
	// loaded twice.
	seen := make(map[string]bool, len(paths)+len(prev))
	candidates := make([]string, 0, len(paths)+len(prev))
	for _, p := range append(paths, prev...) {
		if !seen[p] {
			seen[p] = true
			candidates = append(candidates, p)
		}
	}
	var (
		best     *store.Snapshot
		bestName string
		bestMod  time.Time
	)
	better := func(p string, mod time.Time) bool {
		if best == nil {
			return true
		}
		if !mod.Equal(bestMod) {
			return mod.After(bestMod)
		}
		pPrev := strings.HasSuffix(p, ".prev")
		if bPrev := strings.HasSuffix(bestName, ".prev"); pPrev != bPrev {
			return !pPrev
		}
		return p < bestName
	}
	for _, p := range candidates {
		info, err := os.Stat(p)
		if err != nil || !better(p, info.ModTime()) {
			continue
		}
		snap, err := store.Load(p)
		if err != nil {
			continue
		}
		best, bestName, bestMod = snap, p, info.ModTime()
	}
	if best == nil {
		return nil, "", fmt.Errorf("no usable checkpoint matches %s", pattern)
	}
	return best, bestName, nil
}

// teeInjected records the injected (ground truth) records of a stream.
type teeInjected struct {
	src      engine.Source
	injected *trace.Trace
}

func (t teeInjected) Next() (trace.Record, error) {
	rec, err := t.src.Next()
	if err == nil && rec.Injected {
		*t.injected = append(*t.injected, rec)
	}
	return rec, err
}

// scenarioPool returns the legal ID pool of the scenario's profile, for
// malicious-ID inference on alerts.
func scenarioPool(spec scenario.Spec) []can.ID {
	return vehicle.NewFusionProfile(spec.ProfileSeed).IDSet()
}

// liveStats abstracts "current run statistics" over the single engine
// and the multi-bus supervisor for the metrics ticker.
type liveStats func() engine.Stats

// watchStream drives one source through the engine (or, with -multibus,
// one engine per bus channel under a supervisor): alerts print as the
// ordered merge emits them, a metrics goroutine snapshots live Stats on
// the configured cadence, and the final lines summarize the run. When
// injected ground truth was collected, detection — and with -prevent,
// prevention — is scored against it.
func watchStream(parts *engineParts, src engine.Source, injected *trace.Trace, stdout io.Writer) error {
	opts := parts.opts
	// Per-call prevention state: a multi-file run must not replay the
	// previous file's blocks in this file's report.
	parts.responders = make(map[string]*response.Responder)
	parts.gateways = make(map[string]*gateway.Gateway)
	start := time.Now()
	var mu sync.Mutex // stdout interleaving: sink vs metrics ticker
	var alerts []detect.Alert
	sink := func(channel string, a detect.Alert) {
		mu.Lock()
		defer mu.Unlock()
		alerts = append(alerts, a)
		if channel != "" {
			fmt.Fprintf(stdout, "  ALERT [%s] %s\n", channel, a)
		} else {
			fmt.Fprintf(stdout, "  ALERT %s\n", a)
		}
		// With -prevent the responder already ranks every alert (the
		// BLOCK report names the verdict); re-ranking here would double
		// the inference cost on the merge goroutine the window barrier
		// waits on.
		if !opts.prevent && len(parts.pool) > 0 && len(a.Bits) > 0 {
			if res, err := infer.Rank(a, parts.pool, can.StandardIDBits, opts.rank); err == nil {
				fmt.Fprintf(stdout, "        suspected IDs: %s\n", formatIDs(res.Candidates))
			}
		}
	}

	var stats liveStats
	var run func() (engine.Stats, error)
	if opts.multibus {
		sup, err := engine.NewSupervisor(engine.SupervisorConfig{NewEngine: parts.build})
		if err != nil {
			return err
		}
		stats = sup.TotalStats
		run = func() (engine.Stats, error) {
			_, err := sup.Run(context.Background(), src, sink)
			return sup.TotalStats(), err
		}
	} else {
		eng, err := parts.build("")
		if err != nil {
			return err
		}
		stats = eng.Stats
		run = func() (engine.Stats, error) {
			return eng.Run(context.Background(), src, func(a detect.Alert) { sink("", a) })
		}
	}

	stopMetrics := make(chan struct{})
	var metricsDone sync.WaitGroup
	if opts.metricsEvery > 0 {
		metricsDone.Add(1)
		go func() {
			defer metricsDone.Done()
			tick := time.NewTicker(opts.metricsEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					st := stats()
					mu.Lock()
					line := fmt.Sprintf("  -- t=%v frames=%d windows=%d alerts=%d rate=%.0f frames/s",
						st.LastTime.Truncate(time.Millisecond), st.Frames, st.Windows, st.Alerts,
						float64(st.Frames)/time.Since(start).Seconds())
					if opts.prevent {
						line += fmt.Sprintf(" blocked=%d", st.Dropped)
					}
					fmt.Fprintln(stdout, line)
					mu.Unlock()
				case <-stopMetrics:
					return
				}
			}
		}()
	}

	st, err := run()
	close(stopMetrics)
	metricsDone.Wait()
	if err != nil {
		return err
	}

	elapsed := time.Since(start)
	fmt.Fprintf(stdout, "done: %d frames in %v (%.0f frames/s), %d windows, %d alerts, shards %v\n",
		st.Frames, elapsed.Truncate(time.Millisecond), float64(st.Frames)/elapsed.Seconds(),
		st.Windows, st.Alerts, st.PerShard)
	if opts.prevent {
		reportPrevention(parts, st, injected, stdout)
	}
	if injected != nil && len(*injected) > 0 {
		dr := metrics.DetectionRate(*injected, alerts)
		fmt.Fprintf(stdout, "ground truth: %d injected frames, detection rate %.1f%%\n",
			len(*injected), 100*dr)
	}
	return nil
}

// reportPrevention prints the response history and scores the
// pre-filter against ground truth: how many attack frames the gateway
// stopped, and how many legitimate frames it dropped as collateral.
func reportPrevention(parts *engineParts, st engine.Stats, injected *trace.Trace, stdout io.Writer) {
	for _, channel := range sortedKeys(parts.responders) {
		resp := parts.responders[channel]
		tag := ""
		if channel != "" {
			tag = fmt.Sprintf(" [%s]", channel)
		}
		for _, act := range resp.Actions() {
			until := "forever"
			if act.Until != 0 {
				until = fmt.Sprint(act.Until)
			}
			fmt.Fprintf(stdout, "  BLOCK%s %s until %s (window %v..%v score=%.3f)\n",
				tag, formatIDs(act.Blocked), until, act.Alert.WindowStart, act.Alert.WindowEnd, act.Alert.Score)
		}
		// Expiry is lazy on the gateway; report only quarantines still
		// live at the end of the stream.
		var live []can.ID
		for id, until := range parts.gateways[channel].Quarantines() {
			if until == 0 || until > st.LastTime {
				live = append(live, id)
			}
		}
		if len(live) > 0 {
			sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })
			fmt.Fprintf(stdout, "  still quarantined%s: %s\n", tag, formatIDs(live))
		}
	}
	legitDropped := st.Dropped - st.DroppedInjected
	if injected != nil && len(*injected) > 0 {
		attackTotal := uint64(len(*injected))
		legitTotal := st.Frames - attackTotal
		fmt.Fprintf(stdout, "prevention: %d/%d attack frames blocked (%.1f%%), %d/%d legitimate frames dropped (%.2f%% collateral)\n",
			st.DroppedInjected, attackTotal, 100*float64(st.DroppedInjected)/float64(attackTotal),
			legitDropped, legitTotal, 100*float64(legitDropped)/float64(max(legitTotal, 1)))
	} else {
		fmt.Fprintf(stdout, "prevention: %d frames dropped at the gateway (no ground truth to score)\n", st.Dropped)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
