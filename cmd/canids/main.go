// Command canids trains the bit-entropy golden template and runs
// intrusion detection over CAN logs.
//
// Train a template from clean captures (candump or csv):
//
//	canids -train -window 1s -o template.json clean1.log clean2.log
//
// Detect over a capture, inferring malicious IDs:
//
//	canids -detect -template template.json -alpha 5 -rank 10 attacked.csv
//
// When the input carries ground truth (csv), detection and inference are
// also scored.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"canids/internal/can"
	"canids/internal/core"
	"canids/internal/detect"
	"canids/internal/infer"
	"canids/internal/metrics"
	"canids/internal/trace"
)

// templateFile is the JSON document canids persists: the golden template
// plus the legal ID pool observed during training (used by inference).
type templateFile struct {
	Template core.Template `json:"template"`
	Pool     []can.ID      `json:"pool"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "canids:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("canids", flag.ContinueOnError)
	var (
		train    = fs.Bool("train", false, "build a golden template from clean logs")
		detect   = fs.Bool("detect", false, "run detection over logs")
		tmplPath = fs.String("template", "template.json", "template file path")
		window   = fs.Duration("window", time.Second, "detection window")
		alpha    = fs.Float64("alpha", 5, "threshold multiplier α (paper range [3,10])")
		rank     = fs.Int("rank", infer.DefaultRank, "inference candidate set size")
		out      = fs.String("o", "", "output file for -train (default: -template path)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	switch {
	case *train == *detect:
		return fmt.Errorf("exactly one of -train or -detect is required")
	case len(files) == 0:
		return fmt.Errorf("no input logs given")
	}

	if *train {
		dest := *out
		if dest == "" {
			dest = *tmplPath
		}
		return runTrain(files, *window, dest, stdout)
	}
	return runDetect(files, *tmplPath, *window, *alpha, *rank, stdout)
}

// readLog loads a capture in csv or candump format, by extension first
// and content as a fallback.
func readLog(path string) (trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.EqualFold(filepath.Ext(path), ".csv") {
		return trace.ReadCSV(f)
	}
	if strings.EqualFold(filepath.Ext(path), ".bin") {
		return trace.ReadBinary(f)
	}
	return trace.ReadCandump(f)
}

func runTrain(files []string, window time.Duration, dest string, stdout io.Writer) error {
	var windows []trace.Trace
	poolSet := make(map[can.ID]bool)
	for _, path := range files {
		tr, err := readLog(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		tr.Sort()
		for _, id := range tr.IDs() {
			poolSet[id] = true
		}
		windows = append(windows, tr.Windows(window, false)...)
	}
	cfg := core.DefaultConfig()
	tmpl, err := core.BuildTemplate(windows, cfg.Width, cfg.MinFrames)
	if err != nil {
		return err
	}
	pool := make([]can.ID, 0, len(poolSet))
	for id := range poolSet {
		pool = append(pool, id)
	}
	tf := templateFile{Template: tmpl, Pool: pool}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(tf); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "trained template from %d windows (%d IDs); max per-bit range %.3e\nwritten to %s\n",
		tmpl.Windows, len(pool), tmpl.MaxRange(), dest)
	return nil
}

func runDetect(files []string, tmplPath string, window time.Duration, alpha float64, rank int, stdout io.Writer) error {
	raw, err := os.ReadFile(tmplPath)
	if err != nil {
		return err
	}
	var tf templateFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		return fmt.Errorf("%s: %w", tmplPath, err)
	}
	cfg := core.DefaultConfig()
	cfg.Window = window
	cfg.Alpha = alpha
	d, err := core.New(cfg)
	if err != nil {
		return err
	}
	if err := d.SetTemplate(tf.Template); err != nil {
		return err
	}

	for _, path := range files {
		tr, err := readLog(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		tr.Sort()
		d.Reset()
		var alerts []detect.Alert
		for _, r := range tr {
			alerts = append(alerts, d.Observe(r)...)
		}
		alerts = append(alerts, d.Flush()...)

		fmt.Fprintf(stdout, "%s: %d frames, %d alerts\n", path, len(tr), len(alerts))
		for _, a := range alerts {
			fmt.Fprintf(stdout, "  ALERT %s\n", a)
			if len(tf.Pool) > 0 {
				res, err := infer.Rank(a, tf.Pool, can.StandardIDBits, rank)
				if err == nil {
					fmt.Fprintf(stdout, "        suspected IDs: %s\n", formatIDs(res.Candidates))
				}
			}
		}
		if tr.CountInjected() > 0 {
			dr := metrics.DetectionRate(tr, alerts)
			fmt.Fprintf(stdout, "  ground truth: %d injected frames, detection rate %.1f%%\n",
				tr.CountInjected(), 100*dr)
		}
	}
	return nil
}

func formatIDs(ids []can.ID) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = id.String()
	}
	return strings.Join(parts, " ")
}
