// Command canids trains the bit-entropy golden template and runs
// intrusion detection over CAN logs.
//
// Train a template from clean captures (candump or csv):
//
//	canids -train -window 1s -o template.json clean1.log clean2.log
//
// Detect over a capture, inferring malicious IDs:
//
//	canids -detect -template template.json -alpha 5 -rank 10 attacked.csv
//
// Watch a stream through the sharded engine with live metrics — either
// a named scenario from the built-in matrix (trains on the matrix's
// clean traffic, then streams the scenario live) or captured log files:
//
//	canids -list-scenarios
//	canids -watch -scenario fusion/idle/SI-100 -shards 4 -baselines
//	canids -watch -template template.json -shards 4 attacked.csv
//
// When the input carries ground truth (csv, or a matrix scenario),
// detection and inference are also scored.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"canids/internal/baseline"
	"canids/internal/can"
	"canids/internal/core"
	"canids/internal/detect"
	"canids/internal/engine"
	"canids/internal/engine/scenario"
	"canids/internal/infer"
	"canids/internal/metrics"
	"canids/internal/trace"
	"canids/internal/vehicle"
)

// templateFile is the JSON document canids persists: the golden template
// plus the legal ID pool observed during training (used by inference).
type templateFile struct {
	Template core.Template `json:"template"`
	Pool     []can.ID      `json:"pool"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "canids:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("canids", flag.ContinueOnError)
	var (
		train    = fs.Bool("train", false, "build a golden template from clean logs")
		detect   = fs.Bool("detect", false, "run detection over logs")
		watch    = fs.Bool("watch", false, "stream logs or a scenario through the sharded engine")
		list     = fs.Bool("list-scenarios", false, "print the scenario-matrix catalogue")
		tmplPath = fs.String("template", "template.json", "template file path")
		window   = fs.Duration("window", time.Second, "detection window")
		alpha    = fs.Float64("alpha", 5, "threshold multiplier α (paper range [3,10])")
		rank     = fs.Int("rank", infer.DefaultRank, "inference candidate set size")
		out      = fs.String("o", "", "output file for -train (default: -template path)")

		scenarioName = fs.String("scenario", "", "named scenario from the matrix (see -list-scenarios)")
		seed         = fs.Int64("seed", 1, "scenario-matrix base seed")
		duration     = fs.Duration("duration", 0, "override scenario duration")
		shards       = fs.Int("shards", 1, "engine worker shards")
		baselines    = fs.Bool("baselines", false, "run the Müter and Song baselines alongside (scenario mode)")
		metricsEvery = fs.Duration("metrics", 2*time.Second, "live metrics interval for -watch (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	files := fs.Args()
	modes := 0
	for _, m := range []bool{*train, *detect, *watch, *list} {
		if m {
			modes++
		}
	}
	if modes != 1 {
		return fmt.Errorf("exactly one of -train, -detect, -watch or -list-scenarios is required")
	}

	switch {
	case *list:
		return runList(*seed, stdout)
	case *watch:
		return runWatch(watchOptions{
			files:        files,
			tmplPath:     *tmplPath,
			window:       *window,
			alpha:        *alpha,
			rank:         *rank,
			scenarioName: *scenarioName,
			seed:         *seed,
			duration:     *duration,
			shards:       *shards,
			baselines:    *baselines,
			metricsEvery: *metricsEvery,
		}, stdout)
	case *train:
		if len(files) == 0 {
			return fmt.Errorf("no input logs given")
		}
		dest := *out
		if dest == "" {
			dest = *tmplPath
		}
		return runTrain(files, *window, dest, stdout)
	default:
		if len(files) == 0 {
			return fmt.Errorf("no input logs given")
		}
		return runDetect(files, *tmplPath, *window, *alpha, *rank, stdout)
	}
}

// runList prints the scenario catalogue.
func runList(seed int64, stdout io.Writer) error {
	specs := scenario.Matrix(seed)
	fmt.Fprintf(stdout, "%d scenarios (base seed %d):\n", len(specs), seed)
	for _, s := range specs {
		kind := "clean"
		if !s.Clean() {
			kind = fmt.Sprintf("%s @ %.0f Hz", s.Campaign.Attack, s.Campaign.Frequency)
		}
		fmt.Fprintf(stdout, "  %-26s %v  %s\n", s.Name, s.Duration, kind)
	}
	return nil
}

// readLog loads a whole capture, picking the format by extension.
func readLog(path string) (trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dec, err := trace.NewDecoder(trace.FormatForPath(path), f)
	if err != nil {
		return nil, err
	}
	return trace.ReadAll(dec)
}

func runTrain(files []string, window time.Duration, dest string, stdout io.Writer) error {
	var windows []trace.Trace
	poolSet := make(map[can.ID]bool)
	for _, path := range files {
		tr, err := readLog(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		tr.Sort()
		for _, id := range tr.IDs() {
			poolSet[id] = true
		}
		windows = append(windows, tr.Windows(window, false)...)
	}
	cfg := core.DefaultConfig()
	tmpl, err := core.BuildTemplate(windows, cfg.Width, cfg.MinFrames)
	if err != nil {
		return err
	}
	pool := make([]can.ID, 0, len(poolSet))
	for id := range poolSet {
		pool = append(pool, id)
	}
	tf := templateFile{Template: tmpl, Pool: pool}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(tf); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "trained template from %d windows (%d IDs); max per-bit range %.3e\nwritten to %s\n",
		tmpl.Windows, len(pool), tmpl.MaxRange(), dest)
	return nil
}

func runDetect(files []string, tmplPath string, window time.Duration, alpha float64, rank int, stdout io.Writer) error {
	raw, err := os.ReadFile(tmplPath)
	if err != nil {
		return err
	}
	var tf templateFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		return fmt.Errorf("%s: %w", tmplPath, err)
	}
	cfg := core.DefaultConfig()
	cfg.Window = window
	cfg.Alpha = alpha
	d, err := core.New(cfg)
	if err != nil {
		return err
	}
	if err := d.SetTemplate(tf.Template); err != nil {
		return err
	}

	for _, path := range files {
		tr, err := readLog(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		tr.Sort()
		d.Reset()
		var alerts []detect.Alert
		for _, r := range tr {
			alerts = append(alerts, d.Observe(r)...)
		}
		alerts = append(alerts, d.Flush()...)

		fmt.Fprintf(stdout, "%s: %d frames, %d alerts\n", path, len(tr), len(alerts))
		for _, a := range alerts {
			fmt.Fprintf(stdout, "  ALERT %s\n", a)
			if len(tf.Pool) > 0 {
				res, err := infer.Rank(a, tf.Pool, can.StandardIDBits, rank)
				if err == nil {
					fmt.Fprintf(stdout, "        suspected IDs: %s\n", formatIDs(res.Candidates))
				}
			}
		}
		if tr.CountInjected() > 0 {
			dr := metrics.DetectionRate(tr, alerts)
			fmt.Fprintf(stdout, "  ground truth: %d injected frames, detection rate %.1f%%\n",
				tr.CountInjected(), 100*dr)
		}
	}
	return nil
}

func formatIDs(ids []can.ID) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = id.String()
	}
	return strings.Join(parts, " ")
}

// watchOptions collects the -watch flags.
type watchOptions struct {
	files        []string
	tmplPath     string
	window       time.Duration
	alpha        float64
	rank         int
	scenarioName string
	seed         int64
	duration     time.Duration
	shards       int
	baselines    bool
	metricsEvery time.Duration
}

// runWatch streams a scenario or log files through the sharded engine,
// printing alerts as the ordered merge releases them and a metrics line
// on a fixed wall-clock cadence.
func runWatch(opts watchOptions, stdout io.Writer) error {
	cfg := engine.DefaultConfig()
	cfg.Shards = opts.shards
	cfg.Core.Window = opts.window
	cfg.Core.Alpha = opts.alpha

	if opts.scenarioName != "" {
		return watchScenario(opts, cfg, stdout)
	}
	if len(opts.files) == 0 {
		return fmt.Errorf("-watch needs log files or -scenario")
	}
	if opts.baselines {
		return fmt.Errorf("-baselines needs -scenario (baselines train on the matrix's clean traffic)")
	}
	raw, err := os.ReadFile(opts.tmplPath)
	if err != nil {
		return err
	}
	var tf templateFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		return fmt.Errorf("%s: %w", opts.tmplPath, err)
	}
	eng, err := engine.NewTrained(cfg, tf.Template)
	if err != nil {
		return err
	}
	for _, path := range opts.files {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		src, err := engine.NewLogSource(f, trace.FormatForPath(path))
		if err != nil {
			f.Close()
			return err
		}
		fmt.Fprintf(stdout, "== %s\n", path)
		// CSV and binary captures carry ground truth; tally it in
		// passing so the stream is scored like -detect would.
		var injected trace.Trace
		err = watchStream(eng, teeInjected{src: src, injected: &injected}, tf.Pool, opts, &injected, stdout)
		f.Close()
		if err != nil {
			return err
		}
	}
	return nil
}

// watchScenario trains on the matrix's clean traffic for the scenario's
// profile, then streams the scenario live (simulation goroutine →
// bounded channel → engine).
func watchScenario(opts watchOptions, cfg engine.Config, stdout io.Writer) error {
	specs := scenario.Matrix(opts.seed)
	spec, ok := scenario.Find(specs, opts.scenarioName)
	if !ok {
		return fmt.Errorf("unknown scenario %q (try -list-scenarios)", opts.scenarioName)
	}
	if opts.duration > 0 {
		spec.Duration = opts.duration
	}

	windows, err := scenario.TrainingWindows(specs, spec.Profile, cfg.Core.Window)
	if err != nil {
		return err
	}
	tmpl, err := core.BuildTemplate(windows, cfg.Core.Width, cfg.Core.MinFrames)
	if err != nil {
		return err
	}
	if opts.baselines {
		m, err := baseline.NewMuter(baseline.DefaultMuterConfig())
		if err != nil {
			return err
		}
		s, err := baseline.NewSong(baseline.DefaultSongConfig())
		if err != nil {
			return err
		}
		for _, d := range []detect.Detector{m, s} {
			if err := d.Train(windows); err != nil {
				return fmt.Errorf("train %s: %w", d.Name(), err)
			}
		}
		cfg.Baselines = []detect.Detector{m, s}
	}
	eng, err := engine.NewTrained(cfg, tmpl)
	if err != nil {
		return err
	}

	pool := scenarioPool(spec)
	fmt.Fprintf(stdout, "watching %s (%v, %d shards, template from %d clean windows)\n",
		spec.Name, spec.Duration, cfg.Shards, tmpl.Windows)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := make(chan trace.Record, engine.DefaultBuffer)
	streamErr := make(chan error, 1)
	go func() { streamErr <- spec.Stream(ctx, ch) }()

	// Tally ground truth on the way past: DetectionRate only inspects
	// injected records, so keeping just those scores the stream without
	// retaining it.
	var injected trace.Trace
	src := teeInjected{src: engine.NewChanSource(ctx, ch), injected: &injected}
	if err := watchStream(eng, src, pool, opts, &injected, stdout); err != nil {
		return err
	}
	return <-streamErr
}

// teeInjected records the injected (ground truth) records of a stream.
type teeInjected struct {
	src      engine.Source
	injected *trace.Trace
}

func (t teeInjected) Next() (trace.Record, error) {
	rec, err := t.src.Next()
	if err == nil && rec.Injected {
		*t.injected = append(*t.injected, rec)
	}
	return rec, err
}

// scenarioPool returns the legal ID pool of the scenario's profile, for
// malicious-ID inference on alerts.
func scenarioPool(spec scenario.Spec) []can.ID {
	return vehicle.NewFusionProfile(spec.ProfileSeed).IDSet()
}

// watchStream drives one source through the engine: alerts print as the
// ordered merge emits them, a metrics goroutine snapshots live Stats on
// the configured cadence, and the final line summarizes the run. When
// injected ground truth was collected, the detection rate is scored.
func watchStream(eng *engine.Engine, src engine.Source, pool []can.ID,
	opts watchOptions, injected *trace.Trace, stdout io.Writer) error {

	start := time.Now()
	var mu sync.Mutex // stdout interleaving: sink vs metrics ticker
	var alerts []detect.Alert
	sink := func(a detect.Alert) {
		mu.Lock()
		defer mu.Unlock()
		alerts = append(alerts, a)
		fmt.Fprintf(stdout, "  ALERT %s\n", a)
		if len(pool) > 0 && len(a.Bits) > 0 {
			if res, err := infer.Rank(a, pool, can.StandardIDBits, opts.rank); err == nil {
				fmt.Fprintf(stdout, "        suspected IDs: %s\n", formatIDs(res.Candidates))
			}
		}
	}

	stopMetrics := make(chan struct{})
	var metricsDone sync.WaitGroup
	if opts.metricsEvery > 0 {
		metricsDone.Add(1)
		go func() {
			defer metricsDone.Done()
			tick := time.NewTicker(opts.metricsEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					st := eng.Stats()
					mu.Lock()
					fmt.Fprintf(stdout, "  -- t=%v frames=%d windows=%d alerts=%d rate=%.0f frames/s\n",
						st.LastTime.Truncate(time.Millisecond), st.Frames, st.Windows, st.Alerts,
						float64(st.Frames)/time.Since(start).Seconds())
					mu.Unlock()
				case <-stopMetrics:
					return
				}
			}
		}()
	}

	st, err := eng.Run(context.Background(), src, sink)
	close(stopMetrics)
	metricsDone.Wait()
	if err != nil {
		return err
	}

	elapsed := time.Since(start)
	fmt.Fprintf(stdout, "done: %d frames in %v (%.0f frames/s), %d windows, %d alerts, shards %v\n",
		st.Frames, elapsed.Truncate(time.Millisecond), float64(st.Frames)/elapsed.Seconds(),
		st.Windows, st.Alerts, st.PerShard)
	if injected != nil && len(*injected) > 0 {
		dr := metrics.DetectionRate(*injected, alerts)
		fmt.Fprintf(stdout, "ground truth: %d injected frames, detection rate %.1f%%\n",
			len(*injected), 100*dr)
	}
	return nil
}
