package main

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"canids/internal/core"
	"canids/internal/dataset"
	"canids/internal/detect"
	"canids/internal/engine"
	"canids/internal/experiments"
	"canids/internal/gateway"
	"canids/internal/trace"
)

// evalOptions carries the -eval mode configuration.
type evalOptions struct {
	target  string        // capture file or directory
	split   float64       // training fraction cap for prefix-trained files
	dialect string        // dialect override; "" sniffs per file
	window  time.Duration // detection window
	alpha   float64       // threshold multiplier
	shards  int           // engine worker shards
	logger  *slog.Logger
}

// evalScan is the first streaming pass over one capture: row accounting
// plus the attack-free-prefix geometry the training plan needs. Nothing
// here depends on shard count.
type evalScan struct {
	path        string
	name        string
	dialect     dataset.Dialect
	stats       dataset.Stats
	firstAttack int // imported-record index of the first injected row; -1 if none
}

// evalRow is one evaluated capture's scores for the transcript table.
type evalRow struct {
	scan       *evalScan
	train      int // imported records consumed for training
	evaluated  int // imported records streamed through the engine
	attacks    int // injected records in the evaluated remainder
	detected   int // injected records covered by an alert window
	alerts     int
	falseAlarm int // alerted windows with no injected frame
	cleanWins  int // evaluated windows with no injected frame
	latMean    time.Duration
	latMax     time.Duration
	latN       int
}

// runEval trains on the attack-free part of real-dialect captures and
// streams the rest through the sharded engine, printing a deterministic
// detection/FP/latency table next to Table1. Everything on stdout is a
// pure function of the capture bytes and the flags — independent of
// shard count, so the engine's bit-identical-alerts contract extends to
// imported data (pinned by TestEvalShardDeterminism and the ci.sh leg).
func runEval(opts evalOptions, stdout io.Writer) error {
	paths, err := evalTargets(opts.target)
	if err != nil {
		return err
	}
	var override dataset.Dialect
	if opts.dialect != "" {
		if override, err = dataset.ParseDialect(opts.dialect); err != nil {
			return err
		}
	}

	// Pass 1: dialect + row accounting + attack geometry per capture.
	scans := make([]*evalScan, 0, len(paths))
	for _, p := range paths {
		sc, err := scanCapture(p, override)
		if err != nil {
			return err
		}
		scans = append(scans, sc)
	}

	// Training plan: captures that are labeled and entirely attack-free
	// (or named as such, the convention of the real datasets) train
	// wholly; everything else evaluates wholly. Without such a capture,
	// each file trains on its own attack-free prefix, capped at the
	// -eval-split fraction.
	train := make(map[*evalScan]int, len(scans))
	haveClean := false
	for _, sc := range scans {
		if isAttackFree(sc) {
			train[sc] = sc.stats.Imported
			haveClean = true
		}
	}
	if !haveClean {
		for _, sc := range scans {
			prefix := sc.stats.Imported
			if sc.firstAttack >= 0 {
				prefix = sc.firstAttack
			}
			cap := int(opts.split * float64(sc.stats.Imported))
			if prefix > cap {
				prefix = cap
			}
			train[sc] = prefix
		}
	}
	totalTrain := 0
	for _, n := range train {
		totalTrain += n
	}
	if totalTrain == 0 {
		return fmt.Errorf("no attack-free training rows in %s (labeled clean capture or clean prefix required)", opts.target)
	}

	fmt.Fprintf(stdout, "dataset eval: %d capture(s) from %s (split %.2f, window %v, alpha %g)\n",
		len(scans), opts.target, opts.split, opts.window, opts.alpha)

	// Pass 2a: re-stream the training rows and build the model.
	cfg := core.DefaultConfig()
	cfg.Window = opts.window
	cfg.Alpha = opts.alpha
	var windows []trace.Trace
	for _, sc := range scans {
		n := train[sc]
		if n == 0 {
			continue
		}
		buf, err := readPrefix(sc, n)
		if err != nil {
			return err
		}
		ws := buf.Windows(opts.window, false)
		windows = append(windows, ws...)
		mode := "prefix"
		if n == sc.stats.Imported {
			mode = "whole capture"
		}
		fmt.Fprintf(stdout, "training: %s: %d attack-free rows, %d windows (%s)\n", sc.name, n, len(ws), mode)
	}
	tmpl, err := core.BuildTemplate(windows, cfg.Width, cfg.MinFrames)
	if err != nil {
		return fmt.Errorf("training on %s: %w", opts.target, err)
	}
	learner, err := gateway.NewRateLearner(1)
	if err != nil {
		return err
	}
	for _, w := range windows {
		learner.ObserveWindow(w)
	}
	budgets, err := learner.Budgets()
	if err != nil {
		return fmt.Errorf("gateway budgets: %w", err)
	}
	fmt.Fprintf(stdout, "model: template over %d windows, gateway budgets for %d IDs\n", len(windows), len(budgets))

	// Pass 2b: stream each capture's remainder through the engine.
	var rows []*evalRow
	for _, sc := range scans {
		n := train[sc]
		if n >= sc.stats.Imported {
			continue // consumed entirely by training
		}
		row, err := evalCapture(sc, n, cfg, tmpl, opts)
		if err != nil {
			return err
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return fmt.Errorf("every capture in %s was consumed by training; nothing to evaluate", opts.target)
	}

	fmt.Fprintf(stdout, "\nDataset evaluation — detection / false positives per capture (cf. Table I)\n\n")
	fmt.Fprint(stdout, experiments.RenderTable(
		[]string{"capture", "dialect", "rows", "train", "eval", "attacks", "alerts", "Dr", "FPR", "lat(mean)", "lat(max)"},
		evalCells(rows),
	))
	fmt.Fprintln(stdout)
	for _, r := range rows {
		st := r.scan.stats
		fmt.Fprintf(stdout, "accounting %s: rows=%d imported=%d skipped=%d repaired=%d late=%d train=%d eval=%d attacks=%d detected=%d missed=%d\n",
			r.scan.name, st.Rows, st.Imported, st.Skipped, st.Repaired, st.Late,
			r.train, r.evaluated, r.attacks, r.detected, r.attacks-r.detected)
		if st.Imported+st.Skipped != st.Rows {
			return fmt.Errorf("%s: accounting broken: %d imported + %d skipped != %d rows", r.scan.name, st.Imported, st.Skipped, st.Rows)
		}
		if r.train+r.evaluated != st.Imported {
			return fmt.Errorf("%s: split broken: %d train + %d eval != %d imported", r.scan.name, r.train, r.evaluated, st.Imported)
		}
	}
	return nil
}

// evalCells renders the per-capture score rows. Unlabeled dialects
// (OTIDS) have no ground truth: Dr and FPR print "--", like the paper's
// table does for inapplicable cells.
func evalCells(rows []*evalRow) [][]string {
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		dr, fpr := "--", "--"
		if r.scan.stats.Labeled {
			if r.attacks > 0 {
				dr = fmt.Sprintf("%.1f%%", 100*float64(r.detected)/float64(r.attacks))
			}
			if r.cleanWins > 0 {
				fpr = fmt.Sprintf("%.1f%%", 100*float64(r.falseAlarm)/float64(r.cleanWins))
			}
		}
		latMean, latMax := "--", "--"
		if r.latN > 0 {
			latMean = (r.latMean / time.Duration(r.latN)).Truncate(time.Microsecond).String()
			latMax = r.latMax.Truncate(time.Microsecond).String()
		}
		cells = append(cells, []string{
			r.scan.name,
			r.scan.dialect.String(),
			fmt.Sprint(r.scan.stats.Rows),
			fmt.Sprint(r.train),
			fmt.Sprint(r.evaluated),
			fmt.Sprint(r.attacks),
			fmt.Sprint(r.alerts),
			dr,
			fpr,
			latMean,
			latMax,
		})
	}
	return cells
}

// evalTargets resolves -eval's operand: a file evaluates alone, a
// directory evaluates every regular file in it, in name order.
func evalTargets(target string) ([]string, error) {
	info, err := os.Stat(target)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return []string{target}, nil
	}
	entries, err := os.ReadDir(target)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		if e.Type().IsRegular() {
			paths = append(paths, filepath.Join(target, e.Name()))
		}
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("no capture files in %s", target)
	}
	return paths, nil
}

// openCapture builds the importer for one capture, sniffing the dialect
// unless overridden.
func openCapture(sc *evalScan, override dataset.Dialect) (*os.File, *dataset.Importer, error) {
	f, err := os.Open(sc.path)
	if err != nil {
		return nil, nil, err
	}
	var im *dataset.Importer
	if override != dataset.DialectUnknown {
		im, err = dataset.NewImporter(override, f, dataset.Options{})
	} else {
		im, err = dataset.Open(f, dataset.Options{})
	}
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("%s: %w", sc.path, err)
	}
	return f, im, nil
}

// scanCapture is pass 1: dialect, exact row accounting, first-attack
// index.
func scanCapture(path string, override dataset.Dialect) (*evalScan, error) {
	sc := &evalScan{path: path, name: filepath.Base(path), firstAttack: -1}
	f, im, err := openCapture(sc, override)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	idx := 0
	for {
		rec, err := im.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if rec.Injected && sc.firstAttack < 0 {
			sc.firstAttack = idx
		}
		idx++
	}
	sc.dialect = im.Dialect()
	sc.stats = im.Stats()
	return sc, nil
}

// isAttackFree reports whether a capture can train wholly: it carries
// ground-truth labels with zero attacks, or is named the way the public
// datasets name their clean captures (attack_free, normal_run, …).
func isAttackFree(sc *evalScan) bool {
	if sc.stats.Attacks > 0 {
		return false
	}
	if sc.stats.Labeled {
		return true
	}
	name := strings.ToLower(sc.name)
	return strings.Contains(name, "free") || strings.Contains(name, "normal") || strings.Contains(name, "clean")
}

// readPrefix re-streams the first n imported records of a capture.
func readPrefix(sc *evalScan, n int) (trace.Trace, error) {
	f, im, err := openCapture(sc, sc.dialect)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make(trace.Trace, 0, n)
	for len(buf) < n {
		rec, err := im.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.path, err)
		}
		buf = append(buf, rec)
	}
	return buf, nil
}

// evalSource forwards the evaluated remainder of an importer to the
// engine while tallying per-window ground truth on the way past. The
// tallies depend only on the record stream, never on shard scheduling.
type evalSource struct {
	im    *dataset.Importer
	row   *evalRow
	tally *evalTally
}

func (s *evalSource) Next() (trace.Record, error) {
	rec, err := s.im.Next()
	if err != nil {
		return rec, err
	}
	s.row.evaluated++
	if rec.Injected {
		s.row.attacks++
	}
	s.tally.observe(rec)
	return rec, nil
}

// evalTally accumulates per-window ground truth keyed by window index
// relative to the first evaluated record — the same anchoring the
// engine's window walk uses, so alert spans land on exact keys.
type evalTally struct {
	window   time.Duration
	t0       time.Duration
	anchored bool
	wins     map[int64]*winTruth
}

type winTruth struct {
	frames   int
	injected []time.Duration // injection times inside the window, in stream order
}

func (t *evalTally) observe(rec trace.Record) {
	if !t.anchored {
		t.t0 = rec.Time
		t.anchored = true
	}
	idx := int64((rec.Time - t.t0) / t.window)
	w := t.wins[idx]
	if w == nil {
		w = &winTruth{}
		t.wins[idx] = w
	}
	w.frames++
	if rec.Injected {
		w.injected = append(w.injected, rec.Time)
	}
}

// evalCapture is pass 2b for one capture: skip the training prefix,
// stream the rest through a freshly trained engine, and score the alert
// stream against the tallied ground truth.
func evalCapture(sc *evalScan, skip int, cfg core.Config, tmpl core.Template, opts evalOptions) (*evalRow, error) {
	f, im, err := openCapture(sc, sc.dialect)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	for i := 0; i < skip; i++ {
		if _, err := im.Next(); err != nil {
			return nil, fmt.Errorf("%s: skipping training prefix: %w", sc.path, err)
		}
	}

	ecfg := engine.DefaultConfig()
	ecfg.Shards = opts.shards
	ecfg.Core = cfg
	ecfg.Logger = opts.logger
	eng, err := engine.NewTrained(ecfg, tmpl)
	if err != nil {
		return nil, err
	}
	row := &evalRow{scan: sc, train: skip}
	tally := &evalTally{window: cfg.Window, wins: make(map[int64]*winTruth)}
	src := &evalSource{im: im, row: row, tally: tally}
	var alerts []detect.Alert
	if _, err := eng.Run(context.Background(), src, func(a detect.Alert) {
		alerts = append(alerts, a)
	}); err != nil {
		return nil, fmt.Errorf("%s: engine: %w", sc.path, err)
	}

	// Score: an attack row counts as detected when an alert window
	// covers it; a clean window with an alert is a false alarm; alert
	// latency is the gap from a window's first injected frame to the
	// window close that reveals it.
	row.alerts = len(alerts)
	alerted := make(map[int64]bool, len(alerts))
	for _, a := range alerts {
		idx := int64((a.WindowStart - tally.t0) / tally.window)
		if alerted[idx] {
			continue
		}
		alerted[idx] = true
		w := tally.wins[idx]
		if w == nil || len(w.injected) == 0 {
			continue
		}
		lat := a.WindowEnd - w.injected[0]
		row.latMean += lat
		row.latN++
		if lat > row.latMax {
			row.latMax = lat
		}
	}
	for idx, w := range tally.wins {
		if len(w.injected) == 0 {
			row.cleanWins++
			if alerted[idx] {
				row.falseAlarm++
			}
		} else if alerted[idx] {
			row.detected += len(w.injected)
		}
	}
	return row, nil
}

// runListDialects prints the supported capture dialects, one per line.
func runListDialects(stdout io.Writer) error {
	fmt.Fprintln(stdout, "supported dataset dialects:")
	for _, d := range dataset.Dialects() {
		fmt.Fprintf(stdout, "  %-9s %s\n", d.String(), d.Describe())
	}
	return nil
}
