package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"canids/internal/attack"
	"canids/internal/bus"
	"canids/internal/dataset"
	"canids/internal/sim"
	"canids/internal/trace"
	"canids/internal/vehicle"
)

// fixturePath points at a committed dataset fixture.
func fixturePath(name string) string {
	return filepath.Join("..", "..", "internal", "dataset", "testdata", name)
}

// makeDialectCapture simulates traffic (optionally attacked) and writes
// it in a dataset dialect, mirroring what cangen -dialect does.
func makeDialectCapture(t *testing.T, dir, name string, d dataset.Dialect, seed int64,
	dur time.Duration, epoch time.Duration, atk *attack.Config) string {

	t.Helper()
	sched := sim.NewScheduler()
	b, err := bus.New(sched, bus.Config{BitRate: bus.DefaultMSCANBitRate, Channel: "ms-can"})
	if err != nil {
		t.Fatal(err)
	}
	var log trace.Trace
	b.Tap(func(r trace.Record) { log = append(log, r) })
	profile := vehicle.NewFusionProfile(seed)
	profile.Attach(sched, b, vehicle.Options{Scenario: vehicle.Idle, Seed: seed})
	if atk != nil {
		cfg := *atk
		if cfg.IDs == nil && cfg.Scenario != attack.Flood {
			cfg.IDs = profile.IDSet()[:1]
		}
		if _, err := attack.Launch(sched, b, nil, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if err := sched.RunUntil(dur); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataset.Write(f, d, log, epoch); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestEvalShardDeterminism pins the acceptance contract: the entire
// -eval transcript over a committed fixture is byte-identical at shards
// 1, 2 and 8.
func TestEvalShardDeterminism(t *testing.T) {
	fixture := fixturePath("hcrl.csv")
	if _, err := os.Stat(fixture); err != nil {
		t.Fatalf("committed fixture missing: %v", err)
	}
	var ref []byte
	for _, shards := range []string{"1", "2", "8"} {
		var out bytes.Buffer
		if err := run([]string{"-eval", fixture, "-shards", shards}, &out); err != nil {
			t.Fatalf("-eval -shards %s: %v", shards, err)
		}
		if ref == nil {
			ref = out.Bytes()
			continue
		}
		if !bytes.Equal(out.Bytes(), ref) {
			t.Fatalf("-shards %s transcript differs from -shards 1:\n%s\nvs\n%s", shards, out.Bytes(), ref)
		}
	}
	if !strings.Contains(string(ref), "Dr") || !strings.Contains(string(ref), "accounting hcrl.csv:") {
		t.Fatalf("transcript missing table or accounting:\n%s", ref)
	}
}

// TestEvalFixtureAccounting checks every committed fixture evaluates
// with exact row accounting and full detection on the labeled ones.
func TestEvalFixtureAccounting(t *testing.T) {
	for _, name := range []string{"hcrl.csv", "survival.csv", "otids.log"} {
		t.Run(name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run([]string{"-eval", fixturePath(name)}, &out); err != nil {
				t.Fatalf("-eval: %v", err)
			}
			s := out.String()
			if !strings.Contains(s, "accounting "+name+": ") {
				t.Fatalf("no accounting line:\n%s", s)
			}
			if !strings.Contains(s, "skipped=0") || !strings.Contains(s, "late=0") {
				t.Fatalf("clean fixture import skipped rows:\n%s", s)
			}
			if name == "otids.log" {
				// Unlabeled dialect: no ground-truth columns.
				if !strings.Contains(s, "--") {
					t.Fatalf("unlabeled capture should print -- for Dr/FPR:\n%s", s)
				}
			} else if !strings.Contains(s, "missed=0") {
				t.Fatalf("labeled fixture not fully detected:\n%s", s)
			}
		})
	}
}

// TestEvalDirectoryCleanCaptureTrains evaluates a directory where a
// labeled attack-free capture coexists with an attacked one: the clean
// file must train wholly and only the attacked file must be scored.
func TestEvalDirectoryCleanCaptureTrains(t *testing.T) {
	dir := t.TempDir()
	makeDialectCapture(t, dir, "attack_free.csv", dataset.DialectHCRL, 1, 5*time.Second, 0, nil)
	makeDialectCapture(t, dir, "flooded.csv", dataset.DialectHCRL, 1, 5*time.Second, 0, &attack.Config{
		Scenario:  attack.Flood,
		Frequency: 300,
		Start:     time.Second,
		Seed:      7,
	})
	var out bytes.Buffer
	if err := run([]string{"-eval", dir}, &out); err != nil {
		t.Fatalf("-eval dir: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "training: attack_free.csv") || !strings.Contains(s, "whole capture") {
		t.Fatalf("clean capture did not train wholly:\n%s", s)
	}
	if strings.Contains(s, "accounting attack_free.csv") {
		t.Fatalf("training capture leaked into the score table:\n%s", s)
	}
	if !strings.Contains(s, "accounting flooded.csv") {
		t.Fatalf("attacked capture not evaluated:\n%s", s)
	}
}

// TestEvalDialectOverride forces a dialect on a file whose sniff would
// disagree, and rejects an unknown override with the supported list.
func TestEvalDialectOverride(t *testing.T) {
	dir := t.TempDir()
	// A survival-dialect capture named like an HCRL file: the sniffer
	// would classify it fine, but an explicit override must also work.
	path := makeDialectCapture(t, dir, "capture.txt", dataset.DialectSurvival, 1, 4*time.Second, 0, &attack.Config{
		Scenario:  attack.Flood,
		Frequency: 200,
		Start:     2 * time.Second,
		Seed:      5,
	})
	var out bytes.Buffer
	if err := run([]string{"-eval", path, "-eval-dialect", "survival"}, &out); err != nil {
		t.Fatalf("-eval-dialect survival: %v", err)
	}
	if !strings.Contains(out.String(), "survival") {
		t.Fatalf("transcript does not name the dialect:\n%s", out.String())
	}

	err := run([]string{"-eval", path, "-eval-dialect", "pcap"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "hcrl") {
		t.Fatalf("unknown override error %v must list supported dialects", err)
	}
}

// TestEvalSniffFailureListsDialects feeds an undecidable file and wants
// the error to enumerate what would have been accepted.
func TestEvalSniffFailureListsDialects(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "garbage.bin")
	if err := os.WriteFile(path, []byte("not a capture\nstill not\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-eval", path}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("sniffing garbage succeeded")
	}
	for _, name := range []string{"hcrl", "survival", "otids"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("sniff error %q does not name %q", err, name)
		}
	}
}

// TestEvalFlagValidation covers the mode cross-checks.
func TestEvalFlagValidation(t *testing.T) {
	fixture := fixturePath("hcrl.csv")
	cases := [][]string{
		{"-eval", fixture, "-eval-split", "0"},
		{"-eval", fixture, "-eval-split", "1"},
		{"-eval-split", "0.5"},                     // needs -eval
		{"-eval-dialect", "hcrl"},                  // needs -eval
		{"-eval", fixture, "-train"},               // two modes
		{"-eval", fixture, "extra.log"},            // no positional files
		{"-eval", filepath.Join("no", "such", "dir")},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestListDialectsTranscript(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list-dialects"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"hcrl", "survival", "otids"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list-dialects omits %q:\n%s", name, out.String())
		}
	}
}
