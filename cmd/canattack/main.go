// Command canattack simulates a vehicle network under one of the paper's
// four injection attacks and writes the captured traffic with ground
// truth.
//
// Usage:
//
//	canattack -attack SI -ids 0B5 -freq 100 -o attacked.csv
//	canattack -attack MI -ids 0B5,1A0,2C3 -freq 50
//	canattack -attack WI -ecu BCM -ids auto
//	canattack -attack FI -freq 500
//
// Output is always CSV (the only text format that carries the injected
// flag needed for scoring).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"canids/internal/attack"
	"canids/internal/bus"
	"canids/internal/can"
	"canids/internal/sim"
	"canids/internal/trace"
	"canids/internal/vehicle"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "canattack:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("canattack", flag.ContinueOnError)
	var (
		attackName = fs.String("attack", "SI", "attack scenario: FI|SI|MI|WI")
		idsFlag    = fs.String("ids", "", "comma-separated hex IDs to inject; 'auto' picks from the profile (FI may leave empty)")
		freq       = fs.Float64("freq", 100, "injection attempts per second per attacker")
		start      = fs.Duration("start", 2*time.Second, "attack start time")
		atkDur     = fs.Duration("attack-duration", 8*time.Second, "attack length (0 = until capture ends)")
		duration   = fs.Duration("duration", 12*time.Second, "total capture length")
		seed       = fs.Int64("seed", 1, "simulation seed")
		ecu        = fs.String("ecu", "BCM", "compromised ECU for the WI scenario")
		out        = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	scen, err := parseAttack(*attackName)
	if err != nil {
		return err
	}

	sched := sim.NewScheduler()
	b, err := bus.New(sched, bus.Config{
		BitRate: bus.DefaultMSCANBitRate,
		Channel: "ms-can",
		Guard:   &bus.DominantGuard{Threshold: 0x000, MaxConsecutive: 16},
	})
	if err != nil {
		return err
	}
	var log trace.Trace
	b.Tap(func(r trace.Record) { log = append(log, r) })
	profile := vehicle.NewFusionProfile(*seed)
	fleet := profile.Attach(sched, b, vehicle.Options{Scenario: vehicle.Idle, Seed: *seed})

	cfg := attack.Config{
		Scenario:  scen,
		Frequency: *freq,
		Start:     *start,
		Duration:  *atkDur,
		Seed:      sim.SplitSeed(*seed, 0xA77),
	}
	var port *bus.Port
	switch scen {
	case attack.Weak:
		e, ok := profile.FindECU(*ecu)
		if !ok {
			return fmt.Errorf("unknown ECU %q", *ecu)
		}
		cfg.Filter = e.IDs()
		port, _ = fleet.Port(*ecu)
		if *idsFlag == "auto" || *idsFlag == "" {
			cfg.IDs = e.IDs()[:1]
		}
	case attack.Single:
		if *idsFlag == "auto" || *idsFlag == "" {
			cfg.IDs = profile.IDSet()[:1]
		}
	case attack.Multi:
		if *idsFlag == "auto" || *idsFlag == "" {
			pool := profile.IDSet()
			cfg.IDs = []can.ID{pool[10], pool[100], pool[200]}
		}
	}
	if cfg.IDs == nil && *idsFlag != "" && *idsFlag != "auto" {
		ids, err := parseIDs(*idsFlag)
		if err != nil {
			return err
		}
		cfg.IDs = ids
	}

	inj, err := attack.Launch(sched, b, port, cfg)
	if err != nil {
		return err
	}
	if err := sched.RunUntil(*duration); err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteCSV(w, log); err != nil {
		return err
	}
	injected := log.CountInjected()
	fmt.Fprintf(os.Stderr, "canattack: %s attack, %d attempts, %d injected (Ir=%.3f), %d frames total\n",
		scen, inj.Stats().Attempts, injected,
		float64(injected)/float64(max(1, inj.Stats().Attempts)), len(log))
	return nil
}

func parseAttack(s string) (attack.Scenario, error) {
	switch strings.ToUpper(s) {
	case "FI", "FLOOD":
		return attack.Flood, nil
	case "SI", "SINGLE":
		return attack.Single, nil
	case "MI", "MULTI":
		return attack.Multi, nil
	case "WI", "WEAK":
		return attack.Weak, nil
	default:
		return 0, fmt.Errorf("unknown attack %q", s)
	}
}

func parseIDs(s string) ([]can.ID, error) {
	var out []can.ID
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseUint(part, 16, 32)
		if err != nil {
			return nil, fmt.Errorf("bad ID %q: %w", part, err)
		}
		out = append(out, can.ID(v))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no IDs in %q", s)
	}
	return out, nil
}
