package main

import (
	"bytes"
	"testing"

	"canids/internal/attack"
	"canids/internal/can"
	"canids/internal/trace"
)

func capture(t *testing.T, args []string) trace.Trace {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	tr, err := trace.ReadCSV(&out)
	if err != nil {
		t.Fatalf("output is not csv: %v", err)
	}
	return tr
}

func TestSingleAttackGroundTruth(t *testing.T) {
	tr := capture(t, []string{"-attack", "SI", "-ids", "0B5", "-freq", "100",
		"-duration", "6s", "-start", "1s", "-attack-duration", "3s"})
	injected := tr.Filter(func(r trace.Record) bool { return r.Injected })
	if len(injected) == 0 {
		t.Fatal("no injected frames recorded")
	}
	for _, r := range injected {
		if r.Frame.ID != 0x0B5 {
			t.Fatalf("injected wrong ID %v", r.Frame.ID)
		}
	}
}

func TestFloodAttack(t *testing.T) {
	tr := capture(t, []string{"-attack", "FI", "-freq", "300", "-duration", "4s"})
	injected := tr.Filter(func(r trace.Record) bool { return r.Injected })
	if len(injected) < 100 {
		t.Fatalf("flood produced only %d injected frames", len(injected))
	}
	if ids := injected.IDs(); len(ids) < 5 {
		t.Errorf("flood used only %d IDs", len(ids))
	}
}

func TestMultiAttackAutoIDs(t *testing.T) {
	tr := capture(t, []string{"-attack", "MI", "-ids", "auto", "-freq", "50", "-duration", "5s"})
	injected := tr.Filter(func(r trace.Record) bool { return r.Injected })
	if got := len(injected.IDs()); got != 3 {
		t.Errorf("auto multi attack used %d IDs, want 3", got)
	}
}

func TestWeakAttackFromECU(t *testing.T) {
	tr := capture(t, []string{"-attack", "WI", "-ecu", "BCM", "-ids", "auto",
		"-freq", "50", "-duration", "5s"})
	injected := tr.Filter(func(r trace.Record) bool { return r.Injected })
	if len(injected) == 0 {
		t.Fatal("weak attack produced nothing")
	}
	for _, r := range injected {
		if r.Source != "BCM" {
			t.Fatalf("weak attack source %q, want BCM", r.Source)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-attack", "nope"},
		{"-attack", "SI", "-ids", "XYZ"},
		{"-attack", "WI", "-ecu", "NOPE"},
		{"-attack", "SI", "-ids", "0B5", "-freq", "0"},
		{"-unknown"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestParseAttack(t *testing.T) {
	for name, want := range map[string]attack.Scenario{
		"FI": attack.Flood, "flood": attack.Flood,
		"SI": attack.Single, "single": attack.Single,
		"mi": attack.Multi, "WEAK": attack.Weak,
	} {
		got, err := parseAttack(name)
		if err != nil || got != want {
			t.Errorf("parseAttack(%q) = %v, %v", name, got, err)
		}
	}
}

func TestParseIDs(t *testing.T) {
	ids, err := parseIDs("0B5, 1a0,7FF")
	if err != nil {
		t.Fatal(err)
	}
	want := []can.ID{0x0B5, 0x1A0, 0x7FF}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("ids[%d] = %v, want %v", i, ids[i], want[i])
		}
	}
	if _, err := parseIDs(",,"); err == nil {
		t.Error("empty list should fail")
	}
}
